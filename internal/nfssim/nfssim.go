// Package nfssim wraps any backend.Store with a latency and bandwidth
// model of a synchronous NFSv3 mount over Gigabit Ethernet — the
// remote-filer configuration of the paper's Figure 7 experiments.
//
// The model charges each operation:
//
//	latency = RTT + transferredBytes / Bandwidth
//
// and additionally penalizes block-unaligned reads and writes with
// extra round trips (read-modify-write at the server), which is the
// effect the paper measured as a >10x slowdown for block-unaligned
// EncFS over NFS (§4.2).
//
// Time is charged against a simclock.Clock. With a simclock.Virtual
// the benchmark harness reproduces NFS-regime bandwidth shapes in
// milliseconds of wall time; with simclock.Real the waits are real.
package nfssim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lamassu/internal/backend"
	"lamassu/internal/simclock"
)

// Params describes the simulated network storage link.
type Params struct {
	// RTT is the per-operation round-trip latency (client->server->
	// client), covering the NFS RPC overhead.
	RTT time.Duration
	// WriteRTT, when nonzero, overrides RTT for write operations
	// (synchronous NFS writes cost more server-side work: commit to
	// stable storage).
	WriteRTT time.Duration
	// Bandwidth is the wire bandwidth in bytes per second.
	Bandwidth float64
	// AlignBlock is the server's native block size; operations not
	// aligned to it pay UnalignedPenalty extra round trips. Zero
	// disables alignment accounting.
	AlignBlock int
	// UnalignedPenalty is the number of extra RTTs charged to an
	// unaligned operation (server read-modify-write).
	UnalignedPenalty int
	// TailEvery, when > 0, makes every TailEvery-th operation a tail
	// event whose total latency is multiplied by TailMult — a
	// deterministic two-point latency mixture, the configurable tail
	// the hedged-read layer is built to cut. Zero (the default) keeps
	// the historical fixed-latency behavior.
	TailEvery int
	// TailMult is the tail event's latency multiplier; values <= 1
	// disable the tail.
	TailMult float64
}

// GigabitNFS returns parameters calibrated to the paper's testbed: a
// FAS-class filer behind a 1 GbE switch, NFSv3 with the Linux
// client's usual write-behind/read-ahead pipelining. In that regime a
// streaming 4 KiB workload is limited by wire bandwidth plus a small
// per-RPC processing cost, not by a full synchronous round trip per
// block — the paper's PlainFS moves ~85–100 MB/s (Figure 7). Block-
// UNALIGNED operations, however, defeat write coalescing and force a
// synchronous server-side read-modify-write per request; the paper
// measured that as a >10x collapse (85 MB/s → 7 MB/s for unaligned
// EncFS, §4.2), which the large UnalignedPenalty reproduces.
func GigabitNFS() Params {
	return Params{
		RTT:              8 * time.Microsecond,
		WriteRTT:         12 * time.Microsecond,
		Bandwidth:        118e6, // 1 Gb/s less framing overhead
		AlignBlock:       4096,
		UnalignedPenalty: 64,
	}
}

// Store wraps an inner backend.Store with the latency model.
type Store struct {
	inner backend.Store
	p     Params
	clock simclock.Clock

	mu    sync.Mutex
	stats Stats
}

// Stats accumulates simulated cost accounting.
type Stats struct {
	Ops          int64
	UnalignedOps int64
	TailOps      int64
	BytesMoved   int64
	TimeCharged  time.Duration
}

// New wraps inner with the given link parameters, charging waits to
// clock.
func New(inner backend.Store, p Params, clock simclock.Clock) *Store {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Store{inner: inner, p: p, clock: clock}
}

// Stats returns a snapshot of accumulated cost accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// charge computes and applies the latency for an operation moving n
// bytes at offset off.
func (s *Store) charge(n int, off int64, write bool) { _ = s.chargeCtx(nil, n, off, write) }

// chargeCtx is charge with a context-interruptible wait: a canceled
// ctx cuts the simulated round trip short and the wrapped operation is
// not performed. The cost accounting still records the operation (the
// RPC was "on the wire" when the caller gave up), which mirrors a real
// NFS client canceling an in-flight request.
func (s *Store) chargeCtx(ctx context.Context, n int, off int64, write bool) error {
	rtt := s.p.RTT
	if write && s.p.WriteRTT != 0 {
		rtt = s.p.WriteRTT
	}
	d := rtt
	if s.p.Bandwidth > 0 && n > 0 {
		d += time.Duration(float64(n) / s.p.Bandwidth * float64(time.Second))
	}
	unaligned := false
	if s.p.AlignBlock > 0 && n > 0 {
		if off%int64(s.p.AlignBlock) != 0 || n%s.p.AlignBlock != 0 {
			unaligned = true
			d += time.Duration(s.p.UnalignedPenalty) * rtt
			if write {
				// server must read the surrounding blocks first
				d += time.Duration(float64(s.p.AlignBlock) / s.p.Bandwidth * float64(time.Second))
			}
		}
	}
	s.mu.Lock()
	s.stats.Ops++
	if s.p.TailEvery > 0 && s.p.TailMult > 1 && s.stats.Ops%int64(s.p.TailEvery) == 0 {
		d = time.Duration(float64(d) * s.p.TailMult)
		s.stats.TailOps++
	}
	if unaligned {
		s.stats.UnalignedOps++
	}
	s.stats.BytesMoved += int64(n)
	s.stats.TimeCharged += d
	s.mu.Unlock()
	if err := simclock.SleepCtx(ctx, s.clock, d); err != nil {
		// Prefer the ErrCanceled-wrapped form when the wait ended
		// because ctx was canceled, but never swallow a sleeper failure
		// that had some other cause.
		if cerr := backend.CtxErr(ctx); cerr != nil {
			return cerr
		}
		return fmt.Errorf("nfssim: interrupted wait: %w", err)
	}
	return nil
}

// chargeMeta charges a metadata-only round trip (open/remove/stat...).
func (s *Store) chargeMeta() { s.charge(0, 0, false) }

// chargeMetaCtx is chargeMeta with an interruptible wait.
func (s *Store) chargeMetaCtx(ctx context.Context) error { return s.chargeCtx(ctx, 0, 0, false) }

// Open implements backend.Store.
func (s *Store) Open(name string, flag backend.OpenFlag) (backend.File, error) {
	s.chargeMeta()
	f, err := s.inner.Open(name, flag)
	if err != nil {
		return nil, err
	}
	return &file{store: s, inner: f}, nil
}

// Remove implements backend.Store.
func (s *Store) Remove(name string) error {
	s.chargeMeta()
	return s.inner.Remove(name)
}

// Rename implements backend.Store.
func (s *Store) Rename(oldName, newName string) error {
	s.chargeMeta()
	return s.inner.Rename(oldName, newName)
}

// List implements backend.Store.
func (s *Store) List() ([]string, error) {
	s.chargeMeta()
	return s.inner.List()
}

// Stat implements backend.Store.
func (s *Store) Stat(name string) (int64, error) {
	s.chargeMeta()
	return s.inner.Stat(name)
}

// OpenCtx implements backend.StoreCtx: the metadata round trip is
// interruptible, and the context is forwarded to the inner store.
func (s *Store) OpenCtx(ctx context.Context, name string, flag backend.OpenFlag) (backend.File, error) {
	if err := s.chargeMetaCtx(ctx); err != nil {
		return nil, err
	}
	f, err := backend.OpenCtx(ctx, s.inner, name, flag)
	if err != nil {
		return nil, err
	}
	return &file{store: s, inner: f}, nil
}

// RemoveCtx implements backend.StoreCtx.
func (s *Store) RemoveCtx(ctx context.Context, name string) error {
	if err := s.chargeMetaCtx(ctx); err != nil {
		return err
	}
	return backend.RemoveCtx(ctx, s.inner, name)
}

// ListCtx implements backend.StoreCtx.
func (s *Store) ListCtx(ctx context.Context) ([]string, error) {
	if err := s.chargeMetaCtx(ctx); err != nil {
		return nil, err
	}
	return backend.ListCtx(ctx, s.inner)
}

// StatCtx implements backend.StoreCtx.
func (s *Store) StatCtx(ctx context.Context, name string) (int64, error) {
	if err := s.chargeMetaCtx(ctx); err != nil {
		return 0, err
	}
	return backend.StatCtx(ctx, s.inner, name)
}

type file struct {
	store *Store
	inner backend.File
}

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.store.charge(len(p), off, false)
	return f.inner.ReadAt(p, off)
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	f.store.charge(len(p), off, true)
	return f.inner.WriteAt(p, off)
}

func (f *file) Truncate(size int64) error {
	f.store.chargeMeta()
	return f.inner.Truncate(size)
}

func (f *file) Size() (int64, error) {
	f.store.chargeMeta()
	return f.inner.Size()
}

func (f *file) Sync() error {
	f.store.chargeMeta()
	return f.inner.Sync()
}

func (f *file) Close() error { return f.inner.Close() }

// ReadAtCtx implements backend.FileCtx: the RTT + bandwidth wait is
// cut short when ctx is canceled, and the read is then never issued.
func (f *file) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	if err := f.store.chargeCtx(ctx, len(p), off, false); err != nil {
		return 0, err
	}
	return backend.ReadAtCtx(ctx, f.inner, p, off)
}

// WriteAtCtx implements backend.FileCtx.
func (f *file) WriteAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	if err := f.store.chargeCtx(ctx, len(p), off, true); err != nil {
		return 0, err
	}
	return backend.WriteAtCtx(ctx, f.inner, p, off)
}

// TruncateCtx implements backend.FileCtx.
func (f *file) TruncateCtx(ctx context.Context, size int64) error {
	if err := f.store.chargeMetaCtx(ctx); err != nil {
		return err
	}
	return backend.TruncateCtx(ctx, f.inner, size)
}

// SyncCtx implements backend.FileCtx.
func (f *file) SyncCtx(ctx context.Context) error {
	if err := f.store.chargeMetaCtx(ctx); err != nil {
		return err
	}
	return backend.SyncCtx(ctx, f.inner)
}
