package nfssim

import (
	"testing"
	"time"

	"lamassu/internal/backend"
	"lamassu/internal/simclock"
)

func newSim(p Params) (*Store, *simclock.Virtual) {
	clk := simclock.NewVirtual()
	return New(backend.NewMemStore(), p, clk), clk
}

func TestAlignedWriteCost(t *testing.T) {
	p := Params{
		RTT:              100 * time.Microsecond,
		WriteRTT:         200 * time.Microsecond,
		Bandwidth:        100e6,
		AlignBlock:       4096,
		UnalignedPenalty: 3,
	}
	s, clk := newSim(p)
	f, err := s.Open("f", backend.OpenCreate)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := clk.Now()
	buf := make([]byte, 4096)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now().Sub(start)
	// Expected: open RTT was before start; write = WriteRTT + 4096/100e6 s
	want := 200*time.Microsecond + time.Duration(4096.0/100e6*1e9)
	if elapsed != want {
		t.Fatalf("aligned write charged %v, want %v", elapsed, want)
	}
	st := s.Stats()
	if st.UnalignedOps != 0 {
		t.Fatalf("aligned write counted as unaligned")
	}
}

func TestUnalignedPenalty(t *testing.T) {
	p := GigabitNFS()
	s, clk := newSim(p)
	f, _ := s.Open("f", backend.OpenCreate)
	defer f.Close()
	buf := make([]byte, 4096)

	start := clk.Now()
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	aligned := clk.Now().Sub(start)

	start = clk.Now()
	if _, err := f.WriteAt(buf, 8); err != nil { // misaligned offset
		t.Fatal(err)
	}
	unaligned := clk.Now().Sub(start)

	if unaligned <= aligned*2 {
		t.Fatalf("unaligned write %v not substantially slower than aligned %v", unaligned, aligned)
	}
	if got := s.Stats().UnalignedOps; got != 1 {
		t.Fatalf("UnalignedOps = %d, want 1", got)
	}

	// Unaligned length also triggers the penalty.
	start = clk.Now()
	if _, err := f.WriteAt(buf[:100], 4096); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().UnalignedOps; got != 2 {
		t.Fatalf("UnalignedOps = %d, want 2", got)
	}
	_ = start
}

func TestReadVsWriteRTT(t *testing.T) {
	p := Params{RTT: 100 * time.Microsecond, WriteRTT: 300 * time.Microsecond, Bandwidth: 0}
	s, clk := newSim(p)
	f, _ := s.Open("f", backend.OpenCreate)
	defer f.Close()
	buf := make([]byte, 4096)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}

	start := clk.Now()
	if err := backend.ReadFull(f, buf, 0); err != nil {
		t.Fatal(err)
	}
	readCost := clk.Now().Sub(start)
	if readCost != 100*time.Microsecond {
		t.Fatalf("read cost %v, want RTT 100µs", readCost)
	}
}

func TestStatsAccumulation(t *testing.T) {
	s, clk := newSim(GigabitNFS())
	f, _ := s.Open("f", backend.OpenCreate)
	defer f.Close()
	buf := make([]byte, 8192)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := backend.ReadFull(f, buf, 0); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Ops != 3 { // open + write + read
		t.Fatalf("Ops = %d, want 3", st.Ops)
	}
	if st.BytesMoved != 16384 {
		t.Fatalf("BytesMoved = %d, want 16384", st.BytesMoved)
	}
	if st.TimeCharged <= 0 {
		t.Fatalf("TimeCharged = %v", st.TimeCharged)
	}
	// Virtual clock advanced by exactly the charged time.
	_ = clk
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Fatalf("ResetStats did not zero")
	}
}

func TestPassThroughSemantics(t *testing.T) {
	// The wrapper must not alter data semantics at all.
	s, _ := newSim(GigabitNFS())
	if err := backend.WriteFile(s, "x", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := backend.ReadFile(s, "x")
	if err != nil || string(got) != "hello" {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	if err := s.Rename("x", "y"); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "y" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if sz, err := s.Stat("y"); err != nil || sz != 5 {
		t.Fatalf("Stat = %d, %v", sz, err)
	}
	if err := s.Remove("y"); err != nil {
		t.Fatal(err)
	}
	f, err := s.Open("y", backend.OpenCreate)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 100 {
		t.Fatalf("Size = %d", sz)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNilClockDefaultsToReal(t *testing.T) {
	s := New(backend.NewMemStore(), Params{}, nil)
	if err := backend.WriteFile(s, "a", []byte("b")); err != nil {
		t.Fatal(err)
	}
}

func TestGigabitShapes(t *testing.T) {
	// Sanity-check the calibration: sequential 4 KiB sync writes over
	// the simulated link should land in the tens-of-MB/s range the
	// paper reports for PlainFS over NFS (Figure 7, ~90–150 MB/s for
	// streaming; per-op sync writes land lower).
	s, clk := newSim(GigabitNFS())
	f, _ := s.Open("f", backend.OpenCreate)
	defer f.Close()
	buf := make([]byte, 4096)
	const n = 1000
	start := clk.Now()
	for i := 0; i < n; i++ {
		if _, err := f.WriteAt(buf, int64(i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := clk.Now().Sub(start).Seconds()
	mbps := float64(n*4096) / elapsed / 1e6
	if mbps < 5 || mbps > 200 {
		t.Fatalf("simulated sync-write bandwidth %.1f MB/s outside plausible NFS range", mbps)
	}
}
