package nfssim

import (
	"testing"
	"time"

	"lamassu/internal/backend"
	"lamassu/internal/simclock"
)

// TestTailLatencyDeterministic: with TailEvery/TailMult set, every
// TailEvery-th operation charges exactly TailMult times the base
// latency, and the default params charge the historical fixed cost.
func TestTailLatencyDeterministic(t *testing.T) {
	clock := simclock.NewVirtual()
	s := New(backend.NewMemStore(), Params{RTT: time.Millisecond, TailEvery: 4, TailMult: 10}, clock)
	start := clock.Now()
	for i := 0; i < 8; i++ {
		s.chargeMeta()
	}
	// 8 ops: 6 at 1ms, ops 4 and 8 at 10ms.
	if got, want := clock.Now().Sub(start), 26*time.Millisecond; got != want {
		t.Fatalf("charged %v, want %v", got, want)
	}
	st := s.Stats()
	if st.TailOps != 2 || st.Ops != 8 {
		t.Fatalf("stats %+v, want 2 tails over 8 ops", st)
	}
	if st.TimeCharged != 26*time.Millisecond {
		t.Fatalf("TimeCharged %v, want 26ms", st.TimeCharged)
	}

	// Defaults unchanged: zero TailEvery keeps the fixed cost.
	s2 := New(backend.NewMemStore(), Params{RTT: time.Millisecond}, clock)
	start = clock.Now()
	for i := 0; i < 8; i++ {
		s2.chargeMeta()
	}
	if got, want := clock.Now().Sub(start), 8*time.Millisecond; got != want {
		t.Fatalf("default params charged %v, want %v", got, want)
	}
}
