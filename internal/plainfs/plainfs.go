// Package plainfs implements PlainFS, the unencrypted pass-through
// baseline from the paper's evaluation (§4): "a simple pass-through
// front end for the relevant Linux system calls associated with FUSE
// operations". It exists so that performance comparisons against
// LamassuFS and EncFS include the same VFS-shim overhead on all
// sides, isolating the cost of encryption itself.
//
// Data is stored verbatim, so the downstream deduplication engine sees
// the application's plaintext blocks and achieves the full (1−α)
// reduction of Figure 6.
package plainfs

import (
	"errors"
	"fmt"

	"lamassu/internal/backend"
	"lamassu/internal/vfs"
)

// FS is the pass-through file system.
type FS struct {
	store backend.Store
}

// New returns a PlainFS over the given backing store.
func New(store backend.Store) *FS { return &FS{store: store} }

// Create implements vfs.FS.
func (p *FS) Create(name string) (vfs.File, error) {
	f, err := p.store.Open(name, backend.OpenCreate)
	if err != nil {
		return nil, fmt.Errorf("plainfs: %w", err)
	}
	return &file{f}, nil
}

// Open implements vfs.FS.
func (p *FS) Open(name string) (vfs.File, error) {
	f, err := p.store.Open(name, backend.OpenRead)
	if err != nil {
		return nil, mapErr(err)
	}
	return &file{f}, nil
}

// OpenRW implements vfs.FS.
func (p *FS) OpenRW(name string) (vfs.File, error) {
	f, err := p.store.Open(name, backend.OpenWrite)
	if err != nil {
		return nil, mapErr(err)
	}
	return &file{f}, nil
}

// Remove implements vfs.FS.
func (p *FS) Remove(name string) error { return mapErr(p.store.Remove(name)) }

// Stat implements vfs.FS.
func (p *FS) Stat(name string) (int64, error) {
	sz, err := p.store.Stat(name)
	return sz, mapErr(err)
}

// List implements vfs.FS.
func (p *FS) List() ([]string, error) { return p.store.List() }

func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, backend.ErrNotExist) {
		return fmt.Errorf("plainfs: %w", vfs.ErrNotExist)
	}
	return fmt.Errorf("plainfs: %w", err)
}

// file adapts backend.File to vfs.File one-to-one.
type file struct {
	inner backend.File
}

func (f *file) ReadAt(p []byte, off int64) (int, error)  { return f.inner.ReadAt(p, off) }
func (f *file) WriteAt(p []byte, off int64) (int, error) { return f.inner.WriteAt(p, off) }
func (f *file) Truncate(size int64) error                { return f.inner.Truncate(size) }
func (f *file) Size() (int64, error)                     { return f.inner.Size() }
func (f *file) Sync() error                              { return f.inner.Sync() }
func (f *file) Close() error                             { return f.inner.Close() }
