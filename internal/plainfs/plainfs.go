// Package plainfs implements PlainFS, the unencrypted pass-through
// baseline from the paper's evaluation (§4): "a simple pass-through
// front end for the relevant Linux system calls associated with FUSE
// operations". It exists so that performance comparisons against
// LamassuFS and EncFS include the same VFS-shim overhead on all
// sides, isolating the cost of encryption itself.
//
// Data is stored verbatim, so the downstream deduplication engine sees
// the application's plaintext blocks and achieves the full (1−α)
// reduction of Figure 6.
package plainfs

import (
	"context"
	"errors"
	"fmt"

	"lamassu/internal/backend"
	"lamassu/internal/vfs"
)

// FS is the pass-through file system.
type FS struct {
	store backend.Store
}

// New returns a PlainFS over the given backing store.
func New(store backend.Store) *FS { return &FS{store: store} }

// Create implements vfs.FS.
func (p *FS) Create(name string) (vfs.File, error) { return p.CreateCtx(nil, name) }

// CreateCtx implements vfs.FS.
func (p *FS) CreateCtx(ctx context.Context, name string) (vfs.File, error) {
	f, err := backend.OpenCtx(ctx, p.store, name, backend.OpenCreate)
	if err != nil {
		return nil, fmt.Errorf("plainfs: %w", err)
	}
	return newFile(f), nil
}

// Open implements vfs.FS.
func (p *FS) Open(name string) (vfs.File, error) { return p.OpenCtx(nil, name) }

// OpenCtx implements vfs.FS.
func (p *FS) OpenCtx(ctx context.Context, name string) (vfs.File, error) {
	f, err := backend.OpenCtx(ctx, p.store, name, backend.OpenRead)
	if err != nil {
		return nil, mapErr(err)
	}
	return newFile(f), nil
}

// OpenRW implements vfs.FS.
func (p *FS) OpenRW(name string) (vfs.File, error) { return p.OpenRWCtx(nil, name) }

// OpenRWCtx implements vfs.FS.
func (p *FS) OpenRWCtx(ctx context.Context, name string) (vfs.File, error) {
	f, err := backend.OpenCtx(ctx, p.store, name, backend.OpenWrite)
	if err != nil {
		return nil, mapErr(err)
	}
	return newFile(f), nil
}

// Remove implements vfs.FS.
func (p *FS) Remove(name string) error { return mapErr(p.store.Remove(name)) }

// RemoveCtx implements vfs.FS.
func (p *FS) RemoveCtx(ctx context.Context, name string) error {
	return mapErr(backend.RemoveCtx(ctx, p.store, name))
}

// Stat implements vfs.FS.
func (p *FS) Stat(name string) (int64, error) {
	sz, err := p.store.Stat(name)
	return sz, mapErr(err)
}

// StatCtx implements vfs.FS.
func (p *FS) StatCtx(ctx context.Context, name string) (int64, error) {
	sz, err := backend.StatCtx(ctx, p.store, name)
	return sz, mapErr(err)
}

// List implements vfs.FS.
func (p *FS) List() ([]string, error) { return p.store.List() }

// ListCtx implements vfs.FS.
func (p *FS) ListCtx(ctx context.Context) ([]string, error) {
	return backend.ListCtx(ctx, p.store)
}

func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, backend.ErrNotExist) {
		return fmt.Errorf("plainfs: %w", vfs.ErrNotExist)
	}
	return fmt.Errorf("plainfs: %w", err)
}

// file adapts backend.File to vfs.File one-to-one; the context
// variants forward to the backend so a context-aware store (e.g. the
// NFS simulator) can interrupt its waits.
type file struct {
	vfs.Cursor
	inner backend.File
}

func newFile(inner backend.File) *file {
	f := &file{inner: inner}
	f.BindCursor(f)
	return f
}

func (f *file) ReadAt(p []byte, off int64) (int, error)  { return f.inner.ReadAt(p, off) }
func (f *file) WriteAt(p []byte, off int64) (int, error) { return f.inner.WriteAt(p, off) }
func (f *file) Truncate(size int64) error                { return f.inner.Truncate(size) }
func (f *file) Size() (int64, error)                     { return f.inner.Size() }
func (f *file) Sync() error                              { return f.inner.Sync() }
func (f *file) Close() error                             { return f.inner.Close() }

func (f *file) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	return backend.ReadAtCtx(ctx, f.inner, p, off)
}

func (f *file) WriteAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	return backend.WriteAtCtx(ctx, f.inner, p, off)
}

func (f *file) SyncCtx(ctx context.Context) error { return backend.SyncCtx(ctx, f.inner) }

func (f *file) TruncateCtx(ctx context.Context, size int64) error {
	return backend.TruncateCtx(ctx, f.inner, size)
}

// CloseCtx implements vfs.File; nothing is staged, so the release
// ignores ctx.
func (f *file) CloseCtx(ctx context.Context) error { return f.inner.Close() }
