package plainfs

import (
	"bytes"
	"testing"

	"lamassu/internal/backend"
	"lamassu/internal/dedupe"
	"lamassu/internal/fstest"
	"lamassu/internal/vfs"
)

func TestConformance(t *testing.T) {
	fstest.Conformance(t, func(t *testing.T) vfs.FS {
		return New(backend.NewMemStore())
	})
}

func TestPlaintextVisibleToDedup(t *testing.T) {
	// PlainFS stores application bytes verbatim, so the dedup engine
	// reclaims exactly the duplicated blocks (Figure 6's 1−α line).
	store := backend.NewMemStore()
	fs := New(store)
	blockA := bytes.Repeat([]byte{1}, 4096)
	blockB := bytes.Repeat([]byte{2}, 4096)
	data := append(append(append([]byte(nil), blockA...), blockA...), blockB...)
	if err := vfs.WriteAll(fs, "f", data); err != nil {
		t.Fatal(err)
	}
	// Stored bytes equal logical bytes.
	raw, err := backend.ReadFile(store, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, data) {
		t.Fatalf("PlainFS transformed data")
	}
	e, _ := dedupe.NewEngine(4096)
	rep, err := e.Scan(store)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBlocks != 3 || rep.UniqueBlocks != 2 {
		t.Fatalf("dedup report %+v", rep)
	}
}

func TestNoSpaceOverhead(t *testing.T) {
	store := backend.NewMemStore()
	fs := New(store)
	data := make([]byte, 123456)
	if err := vfs.WriteAll(fs, "f", data); err != nil {
		t.Fatal(err)
	}
	phys, err := store.Stat("f")
	if err != nil {
		t.Fatal(err)
	}
	if phys != 123456 {
		t.Fatalf("physical size %d, want 123456 (no overhead)", phys)
	}
}
