// Cancellation-as-crash-cut over the wire: a client that drops its
// connection mid-upload cancels the request context, which cancels the
// multiphase commit at a backend-write boundary — exactly a crash cut.
// The file must recover, and a retried upload must converge
// byte-identical. (The in-process version of this sweep lives in
// remote_api_test.go; this one goes through real TCP.)
package serve

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"lamassu"
	"lamassu/internal/backend"
)

// gateStore wraps a backend.Store; after arm(n) its files stall the
// n-th data write: they signal reached, then block until the write's
// context cancels and return its cancellation error. Unarmed it is
// transparent.
type gateStore struct {
	backend.Store
	armed   atomic.Bool
	at      atomic.Int64 // stall on the write taking the counter to this value
	writes  atomic.Int64
	reached chan struct{}
}

func newGateStore(inner backend.Store) *gateStore {
	return &gateStore{Store: inner, reached: make(chan struct{})}
}

// arm schedules the stall on the n-th WriteAt from now.
func (g *gateStore) arm(n int64) {
	g.writes.Store(0)
	g.at.Store(n)
	g.reached = make(chan struct{})
	g.armed.Store(true)
}

func (g *gateStore) disarm() { g.armed.Store(false) }

func (g *gateStore) Open(name string, flag backend.OpenFlag) (backend.File, error) {
	f, err := g.Store.Open(name, flag)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, g: g}, nil
}

func (g *gateStore) OpenCtx(ctx context.Context, name string, flag backend.OpenFlag) (backend.File, error) {
	if err := backend.CtxErr(ctx); err != nil {
		return nil, err
	}
	return g.Open(name, flag)
}

// gateFile stalls armed writes. It implements backend.FileCtx so the
// request context reaches the stall point.
type gateFile struct {
	backend.File
	g *gateStore
}

func (f *gateFile) WriteAt(p []byte, off int64) (int, error) {
	return f.WriteAtCtx(context.Background(), p, off)
}

func (f *gateFile) WriteAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	if err := backend.CtxErr(ctx); err != nil {
		return 0, err
	}
	if f.g.armed.Load() && f.g.writes.Add(1) == f.g.at.Load() {
		close(f.g.reached)
		select {
		case <-ctx.Done():
			return 0, backend.CtxErr(ctx)
		case <-time.After(10 * time.Second):
			return 0, context.DeadlineExceeded // test hang guard; never expected
		}
	}
	return backend.WriteAtCtx(ctx, f.File, p, off)
}

func (f *gateFile) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	if err := backend.CtxErr(ctx); err != nil {
		return 0, err
	}
	return backend.ReadAtCtx(ctx, f.File, p, off)
}

func (f *gateFile) TruncateCtx(ctx context.Context, size int64) error {
	if err := backend.CtxErr(ctx); err != nil {
		return err
	}
	return backend.TruncateCtx(ctx, f.File, size)
}

func (f *gateFile) SyncCtx(ctx context.Context) error {
	if err := backend.CtxErr(ctx); err != nil {
		return err
	}
	return backend.SyncCtx(ctx, f.File)
}

func TestWireCancelIsCrashCut(t *testing.T) {
	gate := newGateStore(backend.NewMemStore())
	m, _ := newTestMount(t, gate)
	_, hs := newTestServer(t, Config{Mount: m})

	data := make([]byte, 6*4096)
	rand.New(rand.NewSource(42)).Read(data)

	// Seed an initial version so the canceled overwrite has old state
	// to tear.
	old := bytes.Repeat([]byte{0xEE}, len(data))
	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/conv.bin", tokAlice, old, nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	// Sweep the cut point across the commit's backend writes. A
	// coalesced overwrite commit issues only a handful of backend
	// writes (phase-1 metadata, merged data runs, phase-3 metadata),
	// so the sweep stays within the first three.
	for _, cut := range []int64{1, 2, 3} {
		gate.arm(cut)

		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "PUT", hs.URL+"/v1/files/conv.bin", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("cut %d: NewRequest: %v", cut, err)
		}
		req.Header.Set("Authorization", "Bearer "+tokAlice)
		done := make(chan error, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
				err = nil
			}
			done <- err
		}()

		// Wait for the commit to reach the armed write, then drop the
		// client. The server side sees its request context cancel.
		select {
		case <-gate.reached:
		case err := <-done:
			t.Fatalf("cut %d: request finished (%v) before reaching the gate", cut, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("cut %d: commit never reached backend write %d", cut, cut)
		}
		cancel()
		if err := <-done; err == nil {
			t.Fatalf("cut %d: client saw success for a dropped upload", cut)
		}
		gate.disarm()

		// The mount is exactly crash-cut state: recovery repairs it...
		if _, err := m.Recover("alice/conv.bin"); err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		rep, err := m.Check("alice/conv.bin")
		if err != nil {
			t.Fatalf("cut %d: Check: %v", cut, err)
		}
		if !rep.Clean() {
			t.Fatalf("cut %d: mount not clean after recovery: %+v", cut, rep)
		}

		// ...and a retried upload over the wire converges
		// byte-identical.
		resp, body := doReq(t, "PUT", hs.URL+"/v1/files/conv.bin", tokAlice, data, nil)
		wantStatus(t, resp, body, http.StatusNoContent)
		resp, body = doReq(t, "GET", hs.URL+"/v1/files/conv.bin", tokAlice, nil, nil)
		wantStatus(t, resp, body, http.StatusOK)
		if !bytes.Equal(body, data) {
			t.Fatalf("cut %d: retried upload did not converge (%d bytes)", cut, len(body))
		}
	}

	// A canceled request shows up in neither 2xx nor the file's final
	// bytes — and the server never wedged: a fresh write still works.
	resp, body = doReq(t, "PUT", hs.URL+"/v1/files/after.bin", tokAlice, []byte("still alive"), nil)
	wantStatus(t, resp, body, http.StatusNoContent)
}

// TestCancelErrorMapsTo499 pins the server-side classification: a
// mount error that is a cancellation is logged as client-gone, not as
// a 5xx server fault.
func TestCancelErrorMapsTo499(t *testing.T) {
	err := lamassu.ErrCanceled
	if got := errStatus(err); got != statusClientClosedRequest {
		t.Fatalf("errStatus(ErrCanceled) = %d, want %d", got, statusClientClosedRequest)
	}
}
