// Tenant configuration — the keyfile-style bearer-token map lamassud
// loads at startup.
//
// The format mirrors internal/keyfile: one `field: value` entry per
// line, '#' comments and blank lines ignored, so deployments can
// annotate the file. Two fields exist:
//
//	# lamassud tenant map — guard like any secret
//	tenant: alice 4f7c...long-random-token...
//	tenant: bob   91d2...another-token...
//	admin:  0aa3...operations-token...
//
// Each `tenant:` line binds a bearer token to a tenant name; the name
// becomes the tenant's namespace prefix on the mount (see Server), so
// it must be a single clean path segment. The optional `admin:` line
// sets the token for the /admin endpoints; without it they are
// disabled. Tokens are static secrets: the file must be readable only
// by the daemon (lamassud refuses world-readable tenant files is left
// to the operator; tokens shorter than MinTokenLen are rejected
// outright).
package serve

import (
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strings"
)

// MinTokenLen is the minimum accepted bearer-token length. Short
// tokens are a configuration mistake, not a policy choice, so Parse
// rejects them.
const MinTokenLen = 8

// ErrMalformedTenants reports a tenant file that cannot be parsed.
var ErrMalformedTenants = errors.New("serve: malformed tenant config")

// Tenants is the parsed, immutable tenant map. Lookups compare token
// digests in constant time.
type Tenants struct {
	// byDigest maps sha256(token) -> tenant name.
	byDigest map[[32]byte]string
	// names in file order, for logs and tests.
	names []string
	// adminDigest is sha256(admin token); nil when no admin token is
	// configured (admin endpoints disabled).
	adminDigest *[32]byte
}

// Names returns the tenant names in file order.
func (t *Tenants) Names() []string { return append([]string(nil), t.names...) }

// HasAdmin reports whether an admin token is configured.
func (t *Tenants) HasAdmin() bool { return t.adminDigest != nil }

// Lookup resolves a bearer token to its tenant name.
func (t *Tenants) Lookup(token string) (tenant string, ok bool) {
	d := sha256.Sum256([]byte(token))
	tenant, ok = t.byDigest[d]
	return tenant, ok
}

// IsAdmin reports whether token is the configured admin token,
// comparing digests in constant time.
func (t *Tenants) IsAdmin(token string) bool {
	if t.adminDigest == nil {
		return false
	}
	d := sha256.Sum256([]byte(token))
	return subtle.ConstantTimeCompare(d[:], t.adminDigest[:]) == 1
}

// ValidTenantName reports whether name is usable as a tenant
// namespace prefix: one clean path segment, so the prefixed names stay
// valid flat-mount names and valid io/fs paths ("alice/doc.txt").
func ValidTenantName(name string) bool {
	if name == "" || name == "." || name == ".." || name == "admin" {
		return false
	}
	if strings.ContainsAny(name, "/\\: \t") {
		return false
	}
	return fs.ValidPath(name)
}

// ParseTenants decodes the tenant-file format from raw bytes.
func ParseTenants(raw []byte) (*Tenants, error) {
	t := &Tenants{byDigest: make(map[[32]byte]string)}
	seenNames := make(map[string]bool)
	for lineNo, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		field, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("%w: line %d has no field separator", ErrMalformedTenants, lineNo+1)
		}
		rest = strings.TrimSpace(rest)
		switch strings.TrimSpace(field) {
		case "tenant":
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return nil, fmt.Errorf("%w: line %d: want `tenant: NAME TOKEN`", ErrMalformedTenants, lineNo+1)
			}
			name, token := parts[0], parts[1]
			if !ValidTenantName(name) {
				return nil, fmt.Errorf("%w: line %d: invalid tenant name %q (one clean path segment, not \"admin\")", ErrMalformedTenants, lineNo+1, name)
			}
			if seenNames[name] {
				return nil, fmt.Errorf("%w: line %d: duplicate tenant %q", ErrMalformedTenants, lineNo+1, name)
			}
			if len(token) < MinTokenLen {
				return nil, fmt.Errorf("%w: line %d: token for %q shorter than %d bytes", ErrMalformedTenants, lineNo+1, name, MinTokenLen)
			}
			d := sha256.Sum256([]byte(token))
			if _, dup := t.byDigest[d]; dup || (t.adminDigest != nil && *t.adminDigest == d) {
				return nil, fmt.Errorf("%w: line %d: token for %q reuses another entry's token", ErrMalformedTenants, lineNo+1, name)
			}
			t.byDigest[d] = name
			t.names = append(t.names, name)
			seenNames[name] = true
		case "admin":
			if t.adminDigest != nil {
				return nil, fmt.Errorf("%w: line %d: duplicate admin token", ErrMalformedTenants, lineNo+1)
			}
			if len(rest) < MinTokenLen {
				return nil, fmt.Errorf("%w: line %d: admin token shorter than %d bytes", ErrMalformedTenants, lineNo+1, MinTokenLen)
			}
			d := sha256.Sum256([]byte(rest))
			if _, dup := t.byDigest[d]; dup {
				return nil, fmt.Errorf("%w: line %d: admin token reuses a tenant's token", ErrMalformedTenants, lineNo+1)
			}
			t.adminDigest = &d
		default:
			return nil, fmt.Errorf("%w: line %d: unknown field %q", ErrMalformedTenants, lineNo+1, field)
		}
	}
	if len(t.names) == 0 {
		return nil, fmt.Errorf("%w: no tenants configured", ErrMalformedTenants)
	}
	return t, nil
}

// LoadTenants reads and parses a tenant file from disk.
func LoadTenants(path string) (*Tenants, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return ParseTenants(raw)
}
