// Tenant-config parsing coverage: the accepted grammar, the lookup
// semantics, and the rejection table.
package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseTenantsValid(t *testing.T) {
	ten, err := ParseTenants([]byte(`
# comment
tenant: alice  alice-secret-token
tenant: bob	bob-secret-token

admin: admin-secret-token
`))
	if err != nil {
		t.Fatalf("ParseTenants: %v", err)
	}
	if got := ten.Names(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Names() = %v", got)
	}
	if !ten.HasAdmin() {
		t.Fatal("admin token not recognized")
	}
	if name, ok := ten.Lookup("alice-secret-token"); !ok || name != "alice" {
		t.Fatalf("Lookup(alice token) = %q, %v", name, ok)
	}
	if _, ok := ten.Lookup("wrong-token-entirely"); ok {
		t.Fatal("Lookup admitted an unknown token")
	}
	if _, ok := ten.Lookup("admin-secret-token"); ok {
		t.Fatal("admin token resolved to a tenant")
	}
	if !ten.IsAdmin("admin-secret-token") || ten.IsAdmin("alice-secret-token") {
		t.Fatal("IsAdmin misclassifies")
	}
}

func TestParseTenantsRejects(t *testing.T) {
	cases := []struct{ name, raw string }{
		{"empty", ""},
		{"comments only", "# nothing\n\n"},
		{"no separator", "tenant alice token-token-token\n"},
		{"unknown field", "zone: alice alice-token-long\n"},
		{"missing token", "tenant: alice\n"},
		{"extra field", "tenant: alice tok-long-enough extra\n"},
		{"short token", "tenant: alice short\n"},
		{"short admin", "tenant: a ok-token-len\nadmin: tiny\n"},
		{"dup tenant", "tenant: alice token-aaaaaaa\ntenant: alice token-bbbbbbb\n"},
		{"dup token", "tenant: alice same-token-here\ntenant: bob same-token-here\n"},
		{"admin reuses tenant token", "tenant: alice same-token-here\nadmin: same-token-here\n"},
		{"tenant reuses admin token", "admin: same-token-here\ntenant: alice same-token-here\n"},
		{"dup admin", "tenant: a ok-token-len\nadmin: admin-token-1\nadmin: admin-token-2\n"},
		{"tenant named admin", "tenant: admin token-aaaaaaa\n"},
		{"tenant with slash", "tenant: a/b token-aaaaaaa\n"},
		{"tenant dotdot", "tenant: .. token-aaaaaaa\n"},
		{"admin only", "admin: admin-token-1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTenants([]byte(tc.raw))
			if err == nil {
				t.Fatalf("accepted %q", tc.raw)
			}
			if !errors.Is(err, ErrMalformedTenants) {
				t.Fatalf("error %v does not wrap ErrMalformedTenants", err)
			}
		})
	}
}

func TestValidTenantName(t *testing.T) {
	for _, ok := range []string{"alice", "team-7", "a.b", "x"} {
		if !ValidTenantName(ok) {
			t.Errorf("ValidTenantName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", ".", "..", "admin", "a/b", `a\b`, "a b", "a:b", "a\tb"} {
		if ValidTenantName(bad) {
			t.Errorf("ValidTenantName(%q) = true", bad)
		}
	}
}

func TestLoadTenantsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.conf")
	if err := os.WriteFile(path, []byte("tenant: alice alice-token-xyz\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	ten, err := LoadTenants(path)
	if err != nil {
		t.Fatalf("LoadTenants: %v", err)
	}
	if _, ok := ten.Lookup("alice-token-xyz"); !ok {
		t.Fatal("loaded file does not resolve its token")
	}
	if _, err := LoadTenants(filepath.Join(dir, "nope.conf")); err == nil || !strings.Contains(err.Error(), "serve:") {
		t.Fatalf("missing file error = %v", err)
	}
}
