// Graceful serving: run an http.Server until the context says stop,
// then drain in-flight requests with a deadline before giving up on
// them — the shutdown half of the daemon contract (the caller closes
// the Mount after Graceful returns, so every drained request still had
// a live engine under it).
package serve

import (
	"context"
	"crypto/tls"
	"errors"
	"net"
	"net/http"
	"time"
)

// DefaultDrainTimeout bounds how long Graceful waits for in-flight
// requests after a shutdown signal.
const DefaultDrainTimeout = 10 * time.Second

// GracefulConfig tunes Graceful.
type GracefulConfig struct {
	// DrainTimeout bounds the in-flight drain after ctx is canceled;
	// 0 selects DefaultDrainTimeout. When the deadline passes,
	// remaining connections are closed hard (their request contexts
	// cancel — a crash cut the engine recovers from, by design).
	DrainTimeout time.Duration
	// TLS, when non-nil, serves HTTPS; http.Server then negotiates
	// HTTP/2 via ALPN with no extra dependency. Plain listeners speak
	// HTTP/1.1.
	TLS *tls.Config
	// ErrorLog receives the http.Server's error lines via Logf when
	// non-nil.
	Logf func(format string, args ...any)
}

// Graceful serves handler on lis until ctx is canceled, then drains:
// Shutdown with a DrainTimeout deadline (lets in-flight requests
// finish; their own contexts stay live), then Close for whatever
// remains. It returns nil after a clean drain, the accept error if
// serving failed first, or context.DeadlineExceeded-wrapped state from
// Shutdown when the drain ran out of time.
func Graceful(ctx context.Context, lis net.Listener, handler http.Handler, cfg GracefulConfig) error {
	drain := cfg.DrainTimeout
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	srv := &http.Server{
		Handler:   handler,
		TLSConfig: cfg.TLS,
		// BaseContext is deliberately Background: request contexts must
		// cancel on client disconnect or hard Close, not on the
		// shutdown signal — Shutdown's whole point is letting in-flight
		// requests finish.
	}

	errc := make(chan error, 1)
	go func() {
		var err error
		if cfg.TLS != nil {
			err = srv.Serve(tls.NewListener(lis, cfg.TLS))
		} else {
			err = srv.Serve(lis)
		}
		if !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
		close(errc)
	}()

	select {
	case err, ok := <-errc:
		if ok && err != nil {
			return err
		}
		return errors.New("serve: server stopped unexpectedly")
	case <-ctx.Done():
	}

	if cfg.Logf != nil {
		cfg.Logf("serve: shutdown signal, draining in-flight requests (deadline %s)", drain)
	}
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(dctx)
	if err != nil {
		// Drain deadline passed: close the stragglers hard. Their
		// request contexts cancel mid-operation — a crash cut.
		_ = srv.Close()
	}
	// Wait for the Serve goroutine so the listener is truly released.
	if serr, ok := <-errc; ok && serr != nil && err == nil {
		err = serr
	}
	return err
}
