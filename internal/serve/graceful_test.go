// Graceful-shutdown coverage: a shutdown signal drains in-flight
// requests to completion (their contexts stay live), stops accepting
// new work, and returns so the caller can close the Mount.
package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestGracefulDrainsInFlight(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select {
		case <-release:
		case <-r.Context().Done():
			t.Error("in-flight request context canceled by graceful shutdown")
			return
		}
		w.Write([]byte("drained"))
	})

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- Graceful(ctx, lis, handler, GracefulConfig{DrainTimeout: 5 * time.Second}) }()

	// Start a request, then signal shutdown while it is in flight.
	url := "http://" + lis.Addr().String() + "/"
	reqDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			reqDone <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		reqDone <- string(b)
	}()
	<-entered
	cancel()

	// Graceful is now draining; the in-flight request must still finish
	// successfully once released.
	time.Sleep(50 * time.Millisecond) // let Shutdown begin
	close(release)
	if got := <-reqDone; got != "drained" {
		t.Fatalf("in-flight request got %q, want a full response through the drain", got)
	}
	if err := <-served; err != nil {
		t.Fatalf("Graceful returned %v after a clean drain", err)
	}

	// The listener is released and new connections are refused.
	if _, err := net.DialTimeout("tcp", lis.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after Graceful returned")
	}
}

func TestGracefulDrainDeadline(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	entered := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		// Never finishes on its own: only the hard close ends it.
		<-r.Context().Done()
	})
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- Graceful(ctx, lis, handler, GracefulConfig{DrainTimeout: 100 * time.Millisecond}) }()

	go func() {
		resp, err := http.Get("http://" + lis.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	cancel()

	select {
	case err := <-served:
		// A blown drain deadline must surface as an error (the caller
		// logs it), not hang.
		if err == nil {
			t.Fatal("Graceful returned nil though the drain deadline passed with a wedged request")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Graceful hung past the drain deadline")
	}
}
