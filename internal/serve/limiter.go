package serve

import (
	"sync/atomic"
	"time"
)

// Limiter is the connection-level backpressure gate: admission is tied
// to live queue depth instead of letting overload stack goroutines.
// Each admitted request holds one in-flight slot until it finishes; a
// request arriving while the combined depth — admitted requests plus
// the engine's own queue (worker-pool backlog and backend I/O window
// occupancy) — is at the bound is REJECTED up front, so the server's
// answer to overload is a fast 503 + Retry-After, not an ever-growing
// pile of blocked handlers whose latency grows without bound.
type Limiter struct {
	max   int64
	depth func() int64

	inflight atomic.Int64
	peak     atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
}

// NewLimiter returns a limiter admitting requests while
// inflight + depth() < max. depth reports the engine's live queue
// depth and may be nil (admission then depends on in-flight requests
// alone). max <= 0 selects DefaultMaxInFlight.
func NewLimiter(max int, depth func() int64) *Limiter {
	if max <= 0 {
		max = DefaultMaxInFlight
	}
	if depth == nil {
		depth = func() int64 { return 0 }
	}
	return &Limiter{max: int64(max), depth: depth}
}

// DefaultMaxInFlight is the admission bound used when none is
// configured.
const DefaultMaxInFlight = 64

// Acquire tries to admit one request. On admission it returns a
// release function (call exactly once, when the request finishes) and
// true; on overload it returns nil and false.
func (l *Limiter) Acquire() (release func(), ok bool) {
	in := l.inflight.Add(1)
	if in > l.max || in+l.depth() > l.max {
		l.inflight.Add(-1)
		l.rejected.Add(1)
		return nil, false
	}
	for {
		p := l.peak.Load()
		if in <= p || l.peak.CompareAndSwap(p, in) {
			break
		}
	}
	l.admitted.Add(1)
	return func() { l.inflight.Add(-1) }, true
}

// RetryAfter suggests a client backoff for a rejected request. The
// hint is deliberately coarse — overload is measured in queue depth,
// not time — and is floored at one second, the Retry-After
// granularity.
func (l *Limiter) RetryAfter() time.Duration { return time.Second }

// LimiterStats is a snapshot of the limiter's counters.
type LimiterStats struct {
	// Max is the admission bound; InFlight the requests currently
	// holding a slot; PeakInFlight the deepest the gate has been —
	// bounded by Max at every instant, the invariant the overload
	// benchmark pins.
	Max, InFlight, PeakInFlight int64
	// Admitted and Rejected count admission decisions; Rejected
	// requests were answered 503 + Retry-After without touching the
	// mount.
	Admitted, Rejected int64
}

// Stats returns the current counters.
func (l *Limiter) Stats() LimiterStats {
	return LimiterStats{
		Max:          l.max,
		InFlight:     l.inflight.Load(),
		PeakInFlight: l.peak.Load(),
		Admitted:     l.admitted.Load(),
		Rejected:     l.rejected.Load(),
	}
}
