// Limiter unit coverage plus the wire-level backpressure contract:
// overload answers 503 + Retry-After, and the in-flight gauge never
// exceeds the bound.
package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"lamassu"
)

func TestLimiterBound(t *testing.T) {
	l := NewLimiter(2, nil)
	r1, ok := l.Acquire()
	if !ok {
		t.Fatal("first acquire rejected")
	}
	r2, ok := l.Acquire()
	if !ok {
		t.Fatal("second acquire rejected")
	}
	if _, ok := l.Acquire(); ok {
		t.Fatal("third acquire admitted past the bound")
	}
	r1()
	r3, ok := l.Acquire()
	if !ok {
		t.Fatal("release did not free a slot")
	}
	r2()
	r3()
	st := l.Stats()
	if st.Admitted != 3 || st.Rejected != 1 || st.InFlight != 0 || st.PeakInFlight != 2 {
		t.Fatalf("stats %+v, want admitted 3 rejected 1 inflight 0 peak 2", st)
	}
}

func TestLimiterQueueDepthCounts(t *testing.T) {
	var depth atomic.Int64
	l := NewLimiter(4, depth.Load)
	depth.Store(3)
	r1, ok := l.Acquire()
	if !ok {
		t.Fatal("in=1 depth=3 should fit a bound of 4")
	}
	if _, ok := l.Acquire(); ok {
		t.Fatal("in=2 depth=3 exceeds the bound, should reject")
	}
	depth.Store(0)
	r2, ok := l.Acquire()
	if !ok {
		t.Fatal("drained engine queue should admit again")
	}
	r1()
	r2()
}

func TestLimiterDefault(t *testing.T) {
	l := NewLimiter(0, nil)
	if l.Stats().Max != DefaultMaxInFlight {
		t.Fatalf("max = %d, want DefaultMaxInFlight", l.Stats().Max)
	}
}

func TestLimiterPeakNeverExceedsMax(t *testing.T) {
	const bound = 8
	l := NewLimiter(bound, nil)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if release, ok := l.Acquire(); ok {
					release()
				}
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.PeakInFlight > bound {
		t.Fatalf("peak %d exceeded bound %d", st.PeakInFlight, bound)
	}
	if st.InFlight != 0 {
		t.Fatalf("inflight %d after all releases", st.InFlight)
	}
}

// TestBackpressure503Wire holds the admission gate full with slow
// requests and pins the overload answer: fast 503 with Retry-After,
// admission metrics consistent, and recovery once the load drains.
func TestBackpressure503Wire(t *testing.T) {
	m, _ := newTestMount(t, lamassu.NewMemStorage())
	// A depth probe the test controls: "engine buried" vs "idle".
	var depth atomic.Int64
	s, err := New(Config{Mount: m, Tenants: testTenants(t), MaxInFlight: 2, QueueDepth: depth.Load})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)

	// Report the engine queue as buried: data-plane admission stops.
	depth.Store(2)
	resp, body := doReq(t, "GET", hs.URL+"/v1/list", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusServiceUnavailable)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	st := s.Limiter().Stats()
	if st.Rejected == 0 {
		t.Fatalf("limiter stats %+v, want a rejection", st)
	}

	// Drain: requests flow again.
	depth.Store(0)
	resp, body = doReq(t, "GET", hs.URL+"/v1/list", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)

	// Sanity: unauthenticated and admin requests bypass the limiter
	// even while buried (operators must see an overloaded server).
	depth.Store(1000)
	resp, body = doReq(t, "GET", hs.URL+"/healthz", "", nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	resp, body = doReq(t, "GET", hs.URL+"/admin/stats", tokAdmin, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	resp, body = doReq(t, "GET", hs.URL+"/metrics", "", nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
}
