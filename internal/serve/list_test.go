// Paged /v1/list coverage: the wire handler drives the Mount.FS
// ReadDir pager, so multi-page walks must see every entry exactly once
// and directories must surface as entries.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"testing"
)

func listPage(t *testing.T, base, token, dir, after string, limit int) ListPage {
	t.Helper()
	q := url.Values{}
	if dir != "" {
		q.Set("dir", dir)
	}
	if after != "" {
		q.Set("after", after)
	}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	resp, body := doReq(t, "GET", base+"/v1/list?"+q.Encode(), token, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	var page ListPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("list JSON: %v (%q)", err, body)
	}
	return page
}

func TestListPagedMultiPage(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	// 12 files in one directory, plus a sibling file and a nested dir
	// at the root.
	const n = 12
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("docs/f%02d.txt", i)
		resp, body := doReq(t, "PUT", hs.URL+"/v1/files/"+name, tokAlice, []byte(fmt.Sprintf("payload %d", i)), nil)
		wantStatus(t, resp, body, http.StatusNoContent)
	}
	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/root.txt", tokAlice, []byte("r"), nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	// Root listing: the docs dir and the sibling file.
	root := listPage(t, hs.URL, tokAlice, "", "", 0)
	if len(root.Entries) != 2 {
		t.Fatalf("root list: %d entries (%+v), want 2", len(root.Entries), root.Entries)
	}
	if root.Entries[0].Name != "docs" || !root.Entries[0].Dir {
		t.Fatalf("root[0] = %+v, want dir docs", root.Entries[0])
	}
	if root.Entries[1].Name != "root.txt" || root.Entries[1].Dir || root.Entries[1].Size != 1 {
		t.Fatalf("root[1] = %+v, want file root.txt size 1", root.Entries[1])
	}

	// Page through docs/ five at a time: >1 page, every entry exactly
	// once, sizes carried (Stat over the wire).
	var got []ListEntry
	after := ""
	pages := 0
	for {
		page := listPage(t, hs.URL, tokAlice, "docs", after, 5)
		got = append(got, page.Entries...)
		pages++
		if !page.Truncated {
			break
		}
		if page.Next == "" {
			t.Fatal("truncated page without a next cursor")
		}
		after = page.Next
		if pages > 10 {
			t.Fatal("pager does not terminate")
		}
	}
	if pages < 3 {
		t.Fatalf("12 entries at limit 5 walked in %d pages, want >= 3", pages)
	}
	if len(got) != n {
		t.Fatalf("paged walk saw %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		want := fmt.Sprintf("f%02d.txt", i)
		if e.Name != want {
			t.Fatalf("entry %d = %q, want %q (sorted, exactly-once)", i, e.Name, want)
		}
		wantSize := int64(len(fmt.Sprintf("payload %d", i)))
		if e.Size != wantSize {
			t.Fatalf("entry %s size %d, want %d", e.Name, e.Size, wantSize)
		}
	}

	// The final page really is final.
	last := listPage(t, hs.URL, tokAlice, "docs", got[len(got)-1].Name, 5)
	if len(last.Entries) != 0 || last.Truncated {
		t.Fatalf("page after the last entry: %+v", last)
	}
}

func TestListEmptyAndIsolated(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	// A tenant that never wrote lists an empty root, not an error.
	page := listPage(t, hs.URL, tokBob, "", "", 0)
	if len(page.Entries) != 0 {
		t.Fatalf("empty tenant lists %+v", page.Entries)
	}

	// Alice's files do not appear in bob's listing.
	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/mine.txt", tokAlice, []byte("x"), nil)
	wantStatus(t, resp, body, http.StatusNoContent)
	page = listPage(t, hs.URL, tokBob, "", "", 0)
	if len(page.Entries) != 0 {
		t.Fatalf("bob sees alice's files: %+v", page.Entries)
	}

	// Listing a file (not a dir) is a 400; a missing subdir a 404.
	resp, body = doReq(t, "GET", hs.URL+"/v1/list?dir=mine.txt", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusBadRequest)
	resp, body = doReq(t, "GET", hs.URL+"/v1/list?dir=nosuch", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusNotFound)
}
