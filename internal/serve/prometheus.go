// Hand-rolled Prometheus text exposition for /metrics — every counter
// the engine has grown (latency breakdown, EngineStats, shard stats,
// shard health, hedged reads, retries, cache, pool, rebalance) plus
// the server's own request/backpressure counters, with no exporter
// dependency.
package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// promWriter accumulates one exposition document. Metrics are emitted
// grouped by family (one # HELP / # TYPE header, then every sample).
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) family(name, typ, help string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one metric line. labels alternate key, value.
func (p *promWriter) sample(name string, value float64, labels ...string) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, "%s=%q", labels[i], labels[i+1])
		}
		p.b.WriteByte('}')
	}
	// %g keeps integers integral and avoids exponent noise for the
	// counter magnitudes we emit.
	fmt.Fprintf(&p.b, " %g\n", value)
}

// promLabel sanitizes a category/tenant name into a label value that
// stays greppable: lowercase, [a-z0-9_] only ("I/O" -> "io",
// "Misc." -> "misc").
func promLabel(s string) string {
	var out []byte
	for _, c := range []byte(strings.ToLower(s)) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return "unknown"
	}
	return string(out)
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := &promWriter{}

	// Server plane: requests, admission, backpressure.
	ls := s.limiter.Stats()
	p.family("lamassu_serve_requests_total", "counter", "Requests admitted, by tenant and operation.")
	counts := s.RequestCounts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tenant, op, _ := strings.Cut(k, "/")
		p.sample("lamassu_serve_requests_total", float64(counts[k]), "tenant", promLabel(tenant), "op", op)
	}
	p.family("lamassu_serve_rejected_total", "counter", "Requests rejected with 503 by the admission limiter.")
	p.sample("lamassu_serve_rejected_total", float64(ls.Rejected))
	p.family("lamassu_serve_inflight", "gauge", "Requests currently holding an admission slot.")
	p.sample("lamassu_serve_inflight", float64(ls.InFlight))
	p.family("lamassu_serve_inflight_peak", "gauge", "Deepest the admission gate has been (bounded by max).")
	p.sample("lamassu_serve_inflight_peak", float64(ls.PeakInFlight))
	p.family("lamassu_serve_inflight_max", "gauge", "Admission bound (503s beyond this queue depth).")
	p.sample("lamassu_serve_inflight_max", float64(ls.Max))

	// Latency breakdown (metrics.Recorder categories; empty without
	// CollectLatency).
	if slices := s.m.Latency(); len(slices) > 0 {
		p.family("lamassu_latency_seconds_total", "counter", "Accumulated engine latency by category (paper Figure 9 breakdown).")
		for _, sl := range slices {
			p.sample("lamassu_latency_seconds_total", sl.Total.Seconds(), "category", promLabel(sl.Category))
		}
	}

	// Engine counters.
	es := s.m.EngineStats()
	for _, m := range []struct {
		name, typ, help string
		v               float64
	}{
		{"lamassu_backend_ios_total", "counter", "Backend calls issued (reads, writes, truncates, syncs).", float64(es.BackendIOs)},
		{"lamassu_backend_io_bytes_total", "counter", "Payload bytes moved by backend calls.", float64(es.IOBytes)},
		{"lamassu_backend_write_runs_total", "counter", "Coalesced write runs.", float64(es.WriteRuns)},
		{"lamassu_backend_read_runs_total", "counter", "Coalesced read runs.", float64(es.ReadRuns)},
		{"lamassu_backend_prefetches_total", "counter", "Readahead windows issued.", float64(es.Prefetches)},
		{"lamassu_slab_hits_total", "counter", "Scratch buffers served from the slab pool.", float64(es.SlabHits)},
		{"lamassu_slab_misses_total", "counter", "Scratch buffers freshly allocated.", float64(es.SlabMisses)},
		{"lamassu_retry_attempts_total", "counter", "Backend operations re-issued after transient failure.", float64(es.RetryAttempts)},
		{"lamassu_retries_exhausted_total", "counter", "Operations failed after the retry budget ran out.", float64(es.RetriesExhausted)},
		{"lamassu_io_window", "gauge", "Configured backend I/O window (0 = unwindowed).", float64(es.IOWindow)},
		{"lamassu_io_inflight", "gauge", "Backend operations holding an I/O-window slot.", float64(es.IOInFlight)},
		{"lamassu_io_inflight_peak", "gauge", "Deepest the I/O window has been.", float64(es.IOPeakInFlight)},
		{"lamassu_hedge_attempts_total", "counter", "Duplicate reads issued by the hedging wrapper.", float64(es.HedgeAttempts)},
		{"lamassu_hedge_wins_total", "counter", "Hedged reads that beat the primary.", float64(es.HedgeWins)},
		{"lamassu_read_p50_seconds", "gauge", "Observed backend read-latency p50 (worst store).", es.ReadP50.Seconds()},
		{"lamassu_read_p99_seconds", "gauge", "Observed backend read-latency p99 (worst store).", es.ReadP99.Seconds()},
		{"lamassu_logical_bytes_total", "counter", "Plaintext data bytes moved through the encode/decode path.", float64(es.LogicalBytes)},
		{"lamassu_stored_bytes_total", "counter", "Post-compression data bytes actually moved to/from the backend.", float64(es.StoredBytes)},
		{"lamassu_compressed_blocks_total", "counter", "Data blocks stored as compressed frames.", float64(es.CompressedBlocks)},
		{"lamassu_raw_escapes_total", "counter", "Incompressible data blocks stored verbatim by the raw escape.", float64(es.RawEscapes)},
		{"lamassu_compression_ratio", "gauge", "Live logical-to-stored data ratio (1.0 = no compression win).", es.CompressionRatio()},
		{"lamassu_replica_writes_total", "counter", "Writes landed on non-primary replica copies.", float64(es.ReplicaWrites)},
		{"lamassu_failover_reads_total", "counter", "Reads served by a replica after the preferred copy failed.", float64(es.FailoverReads)},
		{"lamassu_scrub_repairs_total", "counter", "Replica copies re-created or rewritten by scrub.", float64(es.ScrubRepairs)},
		{"lamassu_breaker_opens_total", "counter", "Shard-health breaker openings.", float64(es.BreakerOpens)},
	} {
		p.family(m.name, m.typ, m.help)
		p.sample(m.name, m.v)
	}

	// Cache and pool.
	cs := s.m.CacheStats()
	p.family("lamassu_cache_capacity", "gauge", "Configured block-cache capacity (entries).")
	p.sample("lamassu_cache_capacity", float64(cs.Capacity))
	p.family("lamassu_cache_entries", "gauge", "Cached blocks right now.")
	p.sample("lamassu_cache_entries", float64(cs.Entries))
	p.family("lamassu_cache_hits_total", "counter", "Block-cache hits.")
	p.sample("lamassu_cache_hits_total", float64(cs.Hits))
	p.family("lamassu_cache_misses_total", "counter", "Block-cache misses.")
	p.sample("lamassu_cache_misses_total", float64(cs.Misses))
	ps := s.m.PoolStats()
	p.family("lamassu_pool_width", "gauge", "Commit worker-pool concurrency bound.")
	p.sample("lamassu_pool_width", float64(ps.Width))
	p.family("lamassu_pool_batches_total", "counter", "Commit fan-out invocations.")
	p.sample("lamassu_pool_batches_total", float64(ps.Batches))
	p.family("lamassu_pool_tasks_total", "counter", "Per-block pool tasks executed.")
	p.sample("lamassu_pool_tasks_total", float64(ps.Tasks))

	// Per-shard traffic and health (sharded mounts only).
	if ss := s.m.ShardStats(); len(ss) > 0 {
		p.family("lamassu_shard_reads_total", "counter", "Backend reads routed to the shard.")
		for _, st := range ss {
			p.sample("lamassu_shard_reads_total", float64(st.Reads), "shard", fmt.Sprint(st.Shard))
		}
		p.family("lamassu_shard_writes_total", "counter", "Backend writes routed to the shard.")
		for _, st := range ss {
			p.sample("lamassu_shard_writes_total", float64(st.Writes), "shard", fmt.Sprint(st.Shard))
		}
		p.family("lamassu_shard_bytes_read_total", "counter", "Bytes read from the shard.")
		for _, st := range ss {
			p.sample("lamassu_shard_bytes_read_total", float64(st.BytesRead), "shard", fmt.Sprint(st.Shard))
		}
		p.family("lamassu_shard_bytes_written_total", "counter", "Bytes written to the shard.")
		for _, st := range ss {
			p.sample("lamassu_shard_bytes_written_total", float64(st.BytesWritten), "shard", fmt.Sprint(st.Shard))
		}
		p.family("lamassu_shard_queue_depth", "gauge", "Tasks queued or running for the shard now.")
		for _, st := range ss {
			p.sample("lamassu_shard_queue_depth", float64(st.QueueDepth), "shard", fmt.Sprint(st.Shard))
		}
	}
	if hs := s.m.ShardHealth(); len(hs) > 0 {
		p.family("lamassu_shard_failures_total", "counter", "Health-relevant failures on the shard slot.")
		for _, h := range hs {
			p.sample("lamassu_shard_failures_total", float64(h.Failures), "shard", fmt.Sprint(h.Shard))
		}
		p.family("lamassu_shard_breaker_open", "gauge", "1 when the slot is exiled to half-open probing.")
		for _, h := range hs {
			v := 0.0
			if h.BreakerOpen {
				v = 1
			}
			p.sample("lamassu_shard_breaker_open", v, "shard", fmt.Sprint(h.Shard))
		}
	}

	// Hedged-read per-store breakdown.
	if hrs := s.m.HedgedReadStats(); len(hrs) > 0 {
		p.family("lamassu_hedge_store_reads_total", "counter", "Reads issued through the hedging wrapper, per store.")
		for i, h := range hrs {
			p.sample("lamassu_hedge_store_reads_total", float64(h.Reads), "store", fmt.Sprint(i))
		}
	}

	// Rebalance / migration progress.
	rs := s.m.RebalanceStatus()
	p.family("lamassu_rebalance_active", "gauge", "1 while a placement migration is in progress.")
	p.sample("lamassu_rebalance_active", boolGauge(rs.Active))
	p.family("lamassu_rebalance_epoch", "gauge", "Settled placement epoch being served.")
	p.sample("lamassu_rebalance_epoch", float64(rs.Epoch))
	p.family("lamassu_rebalance_moved_keys_total", "counter", "Keys confirmed moved by the current migration.")
	p.sample("lamassu_rebalance_moved_keys_total", float64(rs.MovedKeys))
	p.family("lamassu_rebalance_moved_bytes_total", "counter", "Bytes copied by the current migration.")
	p.sample("lamassu_rebalance_moved_bytes_total", float64(rs.MovedBytes))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(p.b.String()))
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
