// /metrics exposition coverage: well-formed Prometheus text, the
// engine counters visible and non-zero after traffic, per-tenant
// request counters labeled, and the backpressure gauges present.
package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"lamassu"
)

// promValue extracts the value of the first sample whose line starts
// with prefix (metric name, optionally with a label block).
func promValue(t *testing.T, text, prefix string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

func TestMetricsExposition(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	// Generate traffic under two tenants.
	for i := 0; i < 3; i++ {
		resp, body := doReq(t, "PUT", hs.URL+fmt.Sprintf("/v1/files/m%d.bin", i), tokAlice, make([]byte, 8192), nil)
		wantStatus(t, resp, body, http.StatusNoContent)
	}
	resp, body := doReq(t, "GET", hs.URL+"/v1/files/m0.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	resp, body = doReq(t, "PUT", hs.URL+"/v1/files/b.bin", tokBob, []byte("b"), nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	resp, body = doReq(t, "GET", hs.URL+"/metrics", "", nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type %q", ct)
	}
	text := string(body)

	// Format sanity: every sample line's metric has HELP and TYPE, and
	// HELP/TYPE come in pairs.
	if strings.Count(text, "# HELP") == 0 || strings.Count(text, "# HELP") != strings.Count(text, "# TYPE") {
		t.Fatalf("HELP/TYPE pairing broken: %d HELP, %d TYPE", strings.Count(text, "# HELP"), strings.Count(text, "# TYPE"))
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i > 0 {
			name = line[:i]
		}
		if !strings.HasPrefix(name, "lamassu_") {
			t.Fatalf("sample %q outside the lamassu_ namespace", line)
		}
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Fatalf("sample %q has no TYPE header", line)
		}
	}

	// Per-tenant request counters with sanitized labels.
	if v, ok := promValue(t, text, `lamassu_serve_requests_total{tenant="alice",op="write"}`); !ok || v != 3 {
		t.Fatalf("alice write counter = %v (present %v), want 3", v, ok)
	}
	if v, ok := promValue(t, text, `lamassu_serve_requests_total{tenant="alice",op="read"}`); !ok || v != 1 {
		t.Fatalf("alice read counter = %v (present %v), want 1", v, ok)
	}
	if v, ok := promValue(t, text, `lamassu_serve_requests_total{tenant="bob",op="write"}`); !ok || v != 1 {
		t.Fatalf("bob write counter = %v (present %v), want 1", v, ok)
	}

	// Engine counters are exported and alive (CollectLatency is on).
	if v, ok := promValue(t, text, "lamassu_backend_ios_total"); !ok || v == 0 {
		t.Fatalf("lamassu_backend_ios_total = %v (present %v), want > 0", v, ok)
	}
	if v, ok := promValue(t, text, "lamassu_backend_io_bytes_total"); !ok || v == 0 {
		t.Fatalf("lamassu_backend_io_bytes_total = %v, want > 0 (present %v)", v, ok)
	}
	if _, ok := promValue(t, text, `lamassu_latency_seconds_total{category="io"}`); !ok {
		t.Fatal("latency breakdown missing the io category (label sanitization broke?)")
	}

	// Backpressure gauges present with the configured bound.
	if v, ok := promValue(t, text, "lamassu_serve_inflight_max"); !ok || v != DefaultMaxInFlight {
		t.Fatalf("lamassu_serve_inflight_max = %v (present %v)", v, ok)
	}
	if _, ok := promValue(t, text, "lamassu_serve_rejected_total"); !ok {
		t.Fatal("lamassu_serve_rejected_total missing")
	}
	// Cache/pool families always exported.
	for _, name := range []string{"lamassu_cache_hits_total", "lamassu_pool_width", "lamassu_rebalance_active"} {
		if _, ok := promValue(t, text, name); !ok {
			t.Fatalf("%s missing", name)
		}
	}
}

// TestMetricsCompression drives a compressed mount with compressible
// traffic and requires the logical/stored accounting and the live
// ratio to show the win on /metrics.
func TestMetricsCompression(t *testing.T) {
	keys, err := lamassu.GenerateKeys()
	if err != nil {
		t.Fatalf("GenerateKeys: %v", err)
	}
	m, err := lamassu.New(lamassu.NewMemStorage(), keys,
		lamassu.WithEncryptedNames(),
		lamassu.WithLatencyCollection(),
		lamassu.WithCompression())
	if err != nil {
		t.Fatalf("New mount: %v", err)
	}
	t.Cleanup(func() { _ = m.Close() })
	_, hs := newTestServer(t, Config{Mount: m})

	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/z.bin", tokAlice,
		bytes.Repeat([]byte("compressible metrics payload "), 2048), nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	resp, body = doReq(t, "GET", hs.URL+"/metrics", "", nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	text := string(body)

	logical, ok := promValue(t, text, "lamassu_logical_bytes_total")
	if !ok || logical == 0 {
		t.Fatalf("lamassu_logical_bytes_total = %v (present %v), want > 0", logical, ok)
	}
	stored, ok := promValue(t, text, "lamassu_stored_bytes_total")
	if !ok || stored == 0 || stored >= logical {
		t.Fatalf("lamassu_stored_bytes_total = %v (present %v), want in (0, %v)", stored, ok, logical)
	}
	if v, ok := promValue(t, text, "lamassu_compressed_blocks_total"); !ok || v == 0 {
		t.Fatalf("lamassu_compressed_blocks_total = %v (present %v), want > 0", v, ok)
	}
	if v, ok := promValue(t, text, "lamassu_raw_escapes_total"); !ok || v != 0 {
		t.Fatalf("lamassu_raw_escapes_total = %v (present %v), want 0", v, ok)
	}
	if v, ok := promValue(t, text, "lamassu_compression_ratio"); !ok || v <= 1 {
		t.Fatalf("lamassu_compression_ratio = %v (present %v), want > 1", v, ok)
	}
}

func TestPromLabel(t *testing.T) {
	for in, want := range map[string]string{
		"I/O":      "io",
		"Misc.":    "misc",
		"Encrypt":  "encrypt",
		"GetCEKey": "getcekey",
		"":         "unknown",
		"///":      "unknown",
	} {
		if got := promLabel(in); got != want {
			t.Errorf("promLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
