// Package serve is the network front door of the repository: an HTTP
// file-service daemon over a single lamassu.Mount, with per-tenant
// namespaces, connection-level backpressure and Prometheus export —
// the subsystem behind cmd/lamassud.
//
// # Tenants and cryptographic namespace isolation
//
// Every request authenticates with a static bearer token (Tenants,
// loaded from a keyfile-style config) that resolves to a tenant name.
// The server carves the mount's flat namespace by prefixing every
// logical name with "<tenant>/": tenant alice's "doc.txt" is stored as
// "alice/doc.txt". Served over a mount with EncryptNames (which
// cmd/lamassud always enables), the prefix is not a path check bolted
// onto handlers — it is a namespace carve enforced at the name layer:
// the tenant segment is deterministically encrypted with the zone's
// name key before it reaches the backing store, so two tenants writing
// the same logical name land distinct, mutually unaddressable backend
// objects, and no request a tenant can phrase resolves inside another
// tenant's subtree (names are prefixed before any lookup, and the
// encrypted backing names are not part of the request vocabulary).
//
// # Cancellation
//
// Each request's context flows through the mount into every backend
// call (the API v2 plumbing): a client that disconnects mid-write
// cancels the commit at a backend-write boundary, which is exactly a
// crash cut — the file stays recoverable, recovery converges, and a
// retried upload lands byte-identical.
//
// # Backpressure
//
// Admission is gated by a Limiter tied to the live queue depth
// (in-flight requests plus the engine's worker-pool backlog and I/O
// window occupancy). Overload is answered with 503 + Retry-After
// before the request touches the mount, so queue depth — and tail
// latency — stay bounded instead of stacking handler goroutines.
//
// # API
//
// Data plane (tenant bearer token; names are flat, '/' allowed,
// io/fs-valid):
//
//	GET    /v1/files/{name}            read (Range: bytes=a-b honored, 206)
//	HEAD   /v1/files/{name}            stat (Content-Length = logical size)
//	PUT    /v1/files/{name}            write whole file (body)
//	PUT    /v1/files/{name}?offset=N   write-range at byte offset N
//	POST   /v1/files/{name}?truncate=N truncate to N bytes
//	DELETE /v1/files/{name}            remove
//	GET    /v1/stat/{name}             stat as JSON
//	GET    /v1/list?dir=D&after=A&limit=N   paged directory listing
//
// Admin plane (admin bearer token): GET /admin/shards, GET
// /admin/rebalance, GET /admin/stats, POST /admin/scrub. Unauthenticated:
// GET /metrics (Prometheus text), GET /healthz.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"lamassu"
)

// DefaultListPageSize bounds one /v1/list page when the config does
// not say otherwise.
const DefaultListPageSize = 1000

// statusClientClosedRequest is the (nginx-conventional) status logged
// for requests whose client vanished mid-operation; the client never
// sees it.
const statusClientClosedRequest = 499

// Config assembles a Server.
type Config struct {
	// Mount is the served file system. The caller keeps ownership:
	// Server never closes it.
	Mount *lamassu.Mount
	// Tenants is the parsed bearer-token map.
	Tenants *Tenants
	// MaxInFlight bounds admitted requests plus engine queue depth
	// (see Limiter); 0 selects DefaultMaxInFlight.
	MaxInFlight int
	// QueueDepth overrides the engine-depth probe the limiter adds to
	// the in-flight count; nil selects the mount's live worker-queue +
	// I/O-window depth.
	QueueDepth func() int64
	// ListPageSize caps entries per /v1/list page; 0 selects
	// DefaultListPageSize.
	ListPageSize int
	// MaxUploadBytes caps a single PUT body; 0 means unlimited.
	MaxUploadBytes int64
	// Logf, when non-nil, receives one line per request outcome worth
	// logging (errors and rejections only).
	Logf func(format string, args ...any)
}

// Server is the HTTP handler serving one mount. Create it with New;
// it is safe for concurrent use.
type Server struct {
	m        *lamassu.Mount
	tenants  *Tenants
	limiter  *Limiter
	mux      *http.ServeMux
	pageSize int
	maxBody  int64
	logf     func(string, ...any)

	statsMu sync.Mutex
	reqs    map[opKey]int64
}

// opKey labels one per-tenant operation counter.
type opKey struct{ tenant, op string }

// New builds a Server over cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Mount == nil {
		return nil, errors.New("serve: Config.Mount is required")
	}
	if cfg.Tenants == nil {
		return nil, errors.New("serve: Config.Tenants is required")
	}
	depth := cfg.QueueDepth
	if depth == nil {
		m := cfg.Mount
		depth = func() int64 { return engineDepth(m) }
	}
	s := &Server{
		m:        cfg.Mount,
		tenants:  cfg.Tenants,
		limiter:  NewLimiter(cfg.MaxInFlight, depth),
		pageSize: cfg.ListPageSize,
		maxBody:  cfg.MaxUploadBytes,
		logf:     cfg.Logf,
		reqs:     make(map[opKey]int64),
	}
	if s.pageSize <= 0 {
		s.pageSize = DefaultListPageSize
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /v1/list", s.tenantOp("list", s.handleList))
	mux.Handle("GET /v1/files/{name...}", s.tenantOp("read", s.handleRead))
	mux.Handle("PUT /v1/files/{name...}", s.tenantOp("write", s.handleWrite))
	mux.Handle("POST /v1/files/{name...}", s.tenantOp("truncate", s.handleTruncate))
	mux.Handle("DELETE /v1/files/{name...}", s.tenantOp("remove", s.handleRemove))
	mux.Handle("GET /v1/stat/{name...}", s.tenantOp("stat", s.handleStat))
	mux.Handle("GET /admin/shards", s.adminOp(s.handleShards))
	mux.Handle("GET /admin/rebalance", s.adminOp(s.handleRebalance))
	mux.Handle("GET /admin/stats", s.adminOp(s.handleAdminStats))
	mux.Handle("POST /admin/scrub", s.adminOp(s.handleScrub))
	s.mux = mux
	return s, nil
}

// engineDepth is the mount's live queue depth: per-shard worker
// backlog plus backend I/Os holding an I/O-window slot.
func engineDepth(m *lamassu.Mount) int64 {
	var d int64
	for _, s := range m.ShardStats() {
		d += s.QueueDepth
	}
	d += m.EngineStats().IOInFlight
	return d
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Limiter exposes the admission gate (benchmark and test
// introspection).
func (s *Server) Limiter() *Limiter { return s.limiter }

// RequestCounts snapshots the per-tenant operation counters, keyed
// "tenant/op".
func (s *Server) RequestCounts() map[string]int64 {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	out := make(map[string]int64, len(s.reqs))
	for k, v := range s.reqs {
		out[k.tenant+"/"+k.op] = v
	}
	return out
}

func (s *Server) countOp(tenant, op string) {
	s.statsMu.Lock()
	s.reqs[opKey{tenant, op}]++
	s.statsMu.Unlock()
}

// bearer extracts the bearer token; ok is false when the header is
// missing or not a Bearer credential.
func bearer(r *http.Request) (token string, ok bool) {
	h := r.Header.Get("Authorization")
	scheme, rest, found := strings.Cut(h, " ")
	if !found || !strings.EqualFold(scheme, "Bearer") {
		return "", false
	}
	token = strings.TrimSpace(rest)
	return token, token != ""
}

// tenantOp wraps a data-plane handler with bearer auth, the admission
// limiter and the per-tenant op counter. The resolved tenant rides the
// request context.
func (s *Server) tenantOp(op string, h func(http.ResponseWriter, *http.Request, string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		token, ok := bearer(r)
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="lamassud"`)
			httpError(w, http.StatusUnauthorized, "missing or malformed bearer token")
			return
		}
		tenant, ok := s.tenants.Lookup(token)
		if !ok {
			if s.tenants.IsAdmin(token) {
				httpError(w, http.StatusForbidden, "admin token has no tenant namespace")
				return
			}
			w.Header().Set("WWW-Authenticate", `Bearer realm="lamassud"`)
			httpError(w, http.StatusUnauthorized, "unknown token")
			return
		}
		release, admitted := s.limiter.Acquire()
		if !admitted {
			w.Header().Set("Retry-After", strconv.Itoa(int(s.limiter.RetryAfter().Seconds())))
			httpError(w, http.StatusServiceUnavailable, "overloaded: queue depth at bound, retry later")
			s.logf("serve: 503 %s %s (tenant %s): queue at bound", r.Method, r.URL.Path, tenant)
			return
		}
		defer release()
		s.countOp(tenant, op)
		h(w, r, tenant)
	})
}

// adminOp wraps an admin handler with admin-token auth (no limiter:
// operators must be able to look at an overloaded server).
func (s *Server) adminOp(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		token, ok := bearer(r)
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="lamassud"`)
			httpError(w, http.StatusUnauthorized, "missing or malformed bearer token")
			return
		}
		if !s.tenants.IsAdmin(token) {
			if _, isTenant := s.tenants.Lookup(token); isTenant {
				httpError(w, http.StatusForbidden, "tenant token cannot use the admin plane")
				return
			}
			w.Header().Set("WWW-Authenticate", `Bearer realm="lamassud"`)
			httpError(w, http.StatusUnauthorized, "unknown token")
			return
		}
		s.countOp("admin", strings.TrimPrefix(r.URL.Path, "/admin/"))
		h(w, r)
	})
}

// storedName maps a tenant's logical name into the mount namespace,
// validating it first: io/fs-valid relative paths only, so the carved
// names stay inside the tenant's subtree and visible in Mount.FS.
func storedName(tenant, logical string) (string, error) {
	if logical == "" || logical == "." || !iofs.ValidPath(logical) {
		return "", fmt.Errorf("invalid file name %q (want a clean relative path)", logical)
	}
	if len(logical) > 4096 {
		return "", fmt.Errorf("file name longer than 4096 bytes")
	}
	return tenant + "/" + logical, nil
}

// errStatus maps a mount error onto an HTTP status.
func errStatus(err error) int {
	switch {
	// The io/fs view reports misses with fs.ErrNotExist, the mount
	// proper with the vfs sentinel; both are a 404.
	case lamassu.IsNotExist(err), errors.Is(err, iofs.ErrNotExist):
		return http.StatusNotFound
	case lamassu.IsCanceled(err):
		return statusClientClosedRequest
	case errors.Is(err, lamassu.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// httpError writes a one-line plain-text error body.
func httpError(w http.ResponseWriter, code int, msg string) {
	http.Error(w, msg, code)
}

// mountError reports a failed mount operation to the client.
func (s *Server) mountError(w http.ResponseWriter, r *http.Request, err error) {
	code := errStatus(err)
	if code >= http.StatusInternalServerError || code == statusClientClosedRequest {
		s.logf("serve: %d %s %s: %v", code, r.Method, r.URL.Path, err)
	}
	httpError(w, code, err.Error())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ---- data plane ----------------------------------------------------

// handleRead serves GET and HEAD on /v1/files/{name}: the whole file,
// or one byte range when the request carries a Range header
// (read-range; 206 with Content-Range). X-Lamassu-Size always carries
// the full logical size.
func (s *Server) handleRead(w http.ResponseWriter, r *http.Request, tenant string) {
	name, err := storedName(tenant, r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	f, err := s.m.OpenCtx(ctx, name)
	if err != nil {
		s.mountError(w, r, err)
		return
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		s.mountError(w, r, err)
		return
	}
	w.Header().Set("X-Lamassu-Size", strconv.FormatInt(size, 10))
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Type", "application/octet-stream")

	off, length := int64(0), size
	status := http.StatusOK
	if rng := r.Header.Get("Range"); rng != "" {
		off, length, err = parseRange(rng, size)
		if err != nil {
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
			httpError(w, http.StatusRequestedRangeNotSatisfiable, err.Error())
			return
		}
		status = http.StatusPartialContent
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+length-1, size))
	}
	w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
	w.WriteHeader(status)
	if r.Method == http.MethodHead {
		return
	}
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for length > 0 {
		n := int64(len(buf))
		if n > length {
			n = length
		}
		read, err := f.ReadAtCtx(ctx, buf[:n], off)
		if read > 0 {
			if _, werr := w.Write(buf[:read]); werr != nil {
				return // client went away; nothing to repair on reads
			}
			off += int64(read)
			length -= int64(read)
		}
		if err != nil {
			if int64(read) == n && err == io.EOF {
				continue
			}
			s.logf("serve: read %s at %d: %v", name, off, err)
			return // headers are out; the truncated body signals the failure
		}
	}
}

// parseRange parses a single-range "bytes=a-b" header against size,
// returning the offset and length. Suffix ranges ("bytes=-n") and
// open ends ("bytes=a-") are honored; multi-range requests are not.
func parseRange(h string, size int64) (off, length int64, err error) {
	spec, ok := strings.CutPrefix(strings.TrimSpace(h), "bytes=")
	if !ok || strings.Contains(spec, ",") {
		return 0, 0, fmt.Errorf("unsupported Range %q (single bytes=a-b only)", h)
	}
	startS, endS, ok := strings.Cut(spec, "-")
	if !ok {
		return 0, 0, fmt.Errorf("malformed Range %q", h)
	}
	startS, endS = strings.TrimSpace(startS), strings.TrimSpace(endS)
	if startS == "" { // suffix: last N bytes
		n, err := strconv.ParseInt(endS, 10, 64)
		if err != nil || n <= 0 {
			return 0, 0, fmt.Errorf("malformed Range %q", h)
		}
		if n > size {
			n = size
		}
		return size - n, n, nil
	}
	start, err := strconv.ParseInt(startS, 10, 64)
	if err != nil || start < 0 {
		return 0, 0, fmt.Errorf("malformed Range %q", h)
	}
	if start >= size {
		return 0, 0, fmt.Errorf("range start %d beyond size %d", start, size)
	}
	end := size - 1
	if endS != "" {
		end, err = strconv.ParseInt(endS, 10, 64)
		if err != nil || end < start {
			return 0, 0, fmt.Errorf("malformed Range %q", h)
		}
		if end > size-1 {
			end = size - 1
		}
	}
	return start, end - start + 1, nil
}

// handleWrite serves PUT /v1/files/{name}: the request body replaces
// the whole file, or — with ?offset=N — overwrites a byte range at N
// (the file is created either way; flat names need no mkdir). The
// write and the commits it triggers ride the request context, so a
// dropped client is a crash cut the §2.4 recovery repairs.
func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request, tenant string) {
	name, err := storedName(tenant, r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var offset int64 = -1
	if q := r.URL.Query().Get("offset"); q != "" {
		offset, err = strconv.ParseInt(q, 10, 64)
		if err != nil || offset < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad offset %q", q))
			return
		}
	}
	body := io.Reader(r.Body)
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		// The body never fully arrived (client dropped): nothing was
		// written, nothing to do.
		httpError(w, statusClientClosedRequest, err.Error())
		return
	}
	ctx := r.Context()
	if offset < 0 {
		if err := s.m.WriteFileCtx(ctx, name, data); err != nil {
			s.mountError(w, r, err)
			return
		}
	} else if err := s.writeRange(ctx, name, data, offset); err != nil {
		s.mountError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeRange overwrites len(data) bytes at off, creating the file if
// absent, and syncs so the bytes are committed before the 204.
func (s *Server) writeRange(ctx context.Context, name string, data []byte, off int64) error {
	f, err := s.m.OpenRWCtx(ctx, name)
	if lamassu.IsNotExist(err) {
		f, err = s.m.CreateCtx(ctx, name)
	}
	if err != nil {
		return err
	}
	if _, err := f.WriteAtCtx(ctx, data, off); err != nil {
		_ = f.CloseCtx(ctx)
		return err
	}
	if err := f.SyncCtx(ctx); err != nil {
		_ = f.CloseCtx(ctx)
		return err
	}
	return f.CloseCtx(ctx)
}

// handleTruncate serves POST /v1/files/{name}?truncate=N.
func (s *Server) handleTruncate(w http.ResponseWriter, r *http.Request, tenant string) {
	name, err := storedName(tenant, r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	q := r.URL.Query().Get("truncate")
	if q == "" {
		httpError(w, http.StatusBadRequest, "POST on a file wants ?truncate=SIZE")
		return
	}
	size, err := strconv.ParseInt(q, 10, 64)
	if err != nil || size < 0 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad truncate size %q", q))
		return
	}
	ctx := r.Context()
	f, err := s.m.OpenRWCtx(ctx, name)
	if err != nil {
		s.mountError(w, r, err)
		return
	}
	if err := f.TruncateCtx(ctx, size); err != nil {
		_ = f.CloseCtx(ctx)
		s.mountError(w, r, err)
		return
	}
	if err := f.SyncCtx(ctx); err != nil {
		_ = f.CloseCtx(ctx)
		s.mountError(w, r, err)
		return
	}
	if err := f.CloseCtx(ctx); err != nil {
		s.mountError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRemove serves DELETE /v1/files/{name}.
func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request, tenant string) {
	name, err := storedName(tenant, r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.m.RemoveCtx(r.Context(), name); err != nil {
		s.mountError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStat serves GET /v1/stat/{name} as JSON.
func (s *Server) handleStat(w http.ResponseWriter, r *http.Request, tenant string) {
	logical := r.PathValue("name")
	name, err := storedName(tenant, logical)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	size, err := s.m.StatCtx(r.Context(), name)
	if err != nil {
		s.mountError(w, r, err)
		return
	}
	writeJSON(w, struct {
		Name string `json:"name"`
		Size int64  `json:"size"`
	}{logical, size})
}

// ListEntry is one /v1/list row: a file (with its logical size, the
// Stat result over the wire) or a synthesized directory.
type ListEntry struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
	Dir  bool   `json:"dir,omitempty"`
}

// ListPage is the /v1/list response document.
type ListPage struct {
	Dir     string      `json:"dir"`
	Entries []ListEntry `json:"entries"`
	// Truncated reports that more entries follow; Next is the cursor
	// to pass as ?after= for the following page.
	Truncated bool   `json:"truncated,omitempty"`
	Next      string `json:"next,omitempty"`
}

// handleList serves GET /v1/list?dir=D&after=A&limit=N: one page of
// the tenant's directory listing through the mount's io/fs view, using
// the view's own paged ReadDir. The tenant prefix is the subtree root,
// so a tenant can list only its own carve; an empty namespace lists as
// an empty root, not an error.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request, tenant string) {
	q := r.URL.Query()
	dir := q.Get("dir")
	if dir == "" {
		dir = "."
	}
	if !iofs.ValidPath(dir) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid dir %q", dir))
		return
	}
	limit := s.pageSize
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", ls))
			return
		}
		if n < limit {
			limit = n
		}
	}
	after := q.Get("after")

	root := tenant
	if dir != "." {
		root = tenant + "/" + dir
	}
	df, err := s.m.FS().Open(root)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) && dir == "." {
			// Nothing written yet: an empty namespace, not a 404.
			writeJSON(w, ListPage{Dir: dir, Entries: []ListEntry{}})
			return
		}
		s.mountError(w, r, err)
		return
	}
	defer df.Close()
	rd, ok := df.(iofs.ReadDirFile)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("%q is a file, not a directory", dir))
		return
	}

	// Page through the view's ReadDir pager (entries arrive sorted),
	// discarding up to the cursor, keeping at most limit, then probing
	// one entry further to learn whether the page is the last.
	page := ListPage{Dir: dir, Entries: []ListEntry{}}
	for len(page.Entries) < limit {
		batch, err := rd.ReadDir(limit - len(page.Entries))
		for _, e := range batch {
			if after != "" && e.Name() <= after {
				continue
			}
			entry := ListEntry{Name: e.Name(), Dir: e.IsDir()}
			if info, ierr := e.Info(); ierr == nil && !e.IsDir() {
				entry.Size = info.Size()
			}
			page.Entries = append(page.Entries, entry)
		}
		if err == io.EOF {
			writeJSON(w, page)
			return
		}
		if err != nil {
			s.mountError(w, r, err)
			return
		}
	}
	if more, err := rd.ReadDir(1); err == nil && len(more) > 0 {
		page.Truncated = true
		page.Next = page.Entries[len(page.Entries)-1].Name
	}
	writeJSON(w, page)
}

// ---- admin plane ---------------------------------------------------

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Stats  []lamassu.ShardStat   `json:"stats,omitempty"`
		Health []lamassu.ShardHealth `json:"health,omitempty"`
	}{s.m.ShardStats(), s.m.ShardHealth()})
}

func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.m.RebalanceStatus())
}

func (s *Server) handleAdminStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Engine  lamassu.EngineStats `json:"engine"`
		Cache   lamassu.CacheStats  `json:"cache"`
		Pool    lamassu.PoolStats   `json:"pool"`
		Limiter LimiterStats        `json:"limiter"`
	}{s.m.EngineStats(), s.m.CacheStats(), s.m.PoolStats(), s.limiter.Stats()})
}

func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	stats, err := s.m.Scrub(r.Context())
	if err != nil {
		code := http.StatusConflict
		if lamassu.IsCanceled(err) {
			code = statusClientClosedRequest
		}
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, stats)
}
