// Shared fixtures for the serve test suite: a tenant map, a mount over
// an in-memory store with encrypted names (the daemon's configuration),
// and an httptest server speaking the real wire protocol over TCP.
package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"lamassu"
)

const (
	tokAlice = "alice-token-0123456789abcdef"
	tokBob   = "bob-token-0123456789abcdef"
	tokAdmin = "admin-token-0123456789abcdef"
)

func testTenants(t *testing.T) *Tenants {
	t.Helper()
	ten, err := ParseTenants([]byte(
		"# test tenant map\n" +
			"tenant: alice " + tokAlice + "\n" +
			"tenant: bob " + tokBob + "\n" +
			"admin: " + tokAdmin + "\n"))
	if err != nil {
		t.Fatalf("ParseTenants: %v", err)
	}
	return ten
}

// newTestMount opens a mount the way cmd/lamassud does: encrypted
// names (the isolation layer) and latency collection (the metrics
// source).
func newTestMount(t *testing.T, store lamassu.Storage) (*lamassu.Mount, lamassu.KeyPair) {
	t.Helper()
	keys, err := lamassu.GenerateKeys()
	if err != nil {
		t.Fatalf("GenerateKeys: %v", err)
	}
	m, err := lamassu.New(store, keys,
		lamassu.WithEncryptedNames(),
		lamassu.WithLatencyCollection(),
		lamassu.WithParallelism(4),
		lamassu.WithCache(64))
	if err != nil {
		t.Fatalf("New mount: %v", err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m, keys
}

// newTestServer starts an httptest server (real TCP) over a Server
// built from cfg; cfg.Mount and cfg.Tenants get defaults when unset.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Mount == nil {
		cfg.Mount, _ = newTestMount(t, lamassu.NewMemStorage())
	}
	if cfg.Tenants == nil {
		cfg.Tenants = testTenants(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, hs
}

// doReq performs one request and returns the response with its body
// read and closed.
func doReq(t *testing.T, method, url, token string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("NewRequest %s %s: %v", method, url, err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body %s %s: %v", method, url, err)
	}
	return resp, b
}

// wantStatus fails the test unless the response carries the expected
// status code.
func wantStatus(t *testing.T, resp *http.Response, body []byte, want int) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d (body %q)",
			resp.Request.Method, resp.Request.URL.Path, resp.StatusCode, want, body)
	}
}
