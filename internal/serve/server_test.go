// Wire-level coverage of the data plane: whole-file round trips,
// ranged reads, offset writes, truncate, stat, remove, name
// validation, and the admin plane over a real TCP listener.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"lamassu"
)

func TestRoundTripWire(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	data := make([]byte, 3*4096+137) // spans blocks, ragged tail
	rand.New(rand.NewSource(9)).Read(data)

	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/dir/doc.bin", tokAlice, data, nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	resp, body = doReq(t, "GET", hs.URL+"/v1/files/dir/doc.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if !bytes.Equal(body, data) {
		t.Fatalf("GET returned %d bytes, want %d identical", len(body), len(data))
	}
	if got := resp.Header.Get("X-Lamassu-Size"); got != fmt.Sprint(len(data)) {
		t.Fatalf("X-Lamassu-Size = %q, want %d", got, len(data))
	}

	// HEAD carries the size without a body.
	resp, body = doReq(t, "HEAD", hs.URL+"/v1/files/dir/doc.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if resp.ContentLength != int64(len(data)) {
		t.Fatalf("HEAD Content-Length = %d, want %d", resp.ContentLength, len(data))
	}
	if len(body) != 0 {
		t.Fatalf("HEAD returned %d body bytes", len(body))
	}

	// Stat as JSON.
	resp, body = doReq(t, "GET", hs.URL+"/v1/stat/dir/doc.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	var st struct {
		Name string `json:"name"`
		Size int64  `json:"size"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stat JSON: %v (%q)", err, body)
	}
	if st.Name != "dir/doc.bin" || st.Size != int64(len(data)) {
		t.Fatalf("stat = %+v, want {dir/doc.bin %d}", st, len(data))
	}

	// Remove, then both read and stat 404.
	resp, body = doReq(t, "DELETE", hs.URL+"/v1/files/dir/doc.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusNoContent)
	resp, body = doReq(t, "GET", hs.URL+"/v1/files/dir/doc.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusNotFound)
	resp, body = doReq(t, "GET", hs.URL+"/v1/stat/dir/doc.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusNotFound)
}

func TestRangedReadWire(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	data := make([]byte, 2*4096+500)
	rand.New(rand.NewSource(10)).Read(data)
	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/r.bin", tokAlice, data, nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	cases := []struct {
		rng        string
		off, end   int64 // inclusive byte range expected back
		wantStatus int
	}{
		{"bytes=0-99", 0, 99, http.StatusPartialContent},
		{"bytes=4000-4200", 4000, 4200, http.StatusPartialContent}, // crosses a block boundary
		{"bytes=8000-", 8000, int64(len(data)) - 1, http.StatusPartialContent},
		{"bytes=-100", int64(len(data)) - 100, int64(len(data)) - 1, http.StatusPartialContent},
		{"bytes=0-999999", 0, int64(len(data)) - 1, http.StatusPartialContent}, // end clamps
		{"bytes=999999-", 0, 0, http.StatusRequestedRangeNotSatisfiable},
		{"bytes=5-2", 0, 0, http.StatusRequestedRangeNotSatisfiable},
		{"bytes=0-10,20-30", 0, 0, http.StatusRequestedRangeNotSatisfiable}, // multi-range unsupported
	}
	for _, tc := range cases {
		resp, body := doReq(t, "GET", hs.URL+"/v1/files/r.bin", tokAlice, nil, map[string]string{"Range": tc.rng})
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("Range %q: status %d, want %d (%q)", tc.rng, resp.StatusCode, tc.wantStatus, body)
		}
		if tc.wantStatus != http.StatusPartialContent {
			continue
		}
		want := data[tc.off : tc.end+1]
		if !bytes.Equal(body, want) {
			t.Fatalf("Range %q: got %d bytes, want bytes [%d,%d]", tc.rng, len(body), tc.off, tc.end)
		}
		cr := fmt.Sprintf("bytes %d-%d/%d", tc.off, tc.end, len(data))
		if got := resp.Header.Get("Content-Range"); got != cr {
			t.Fatalf("Range %q: Content-Range %q, want %q", tc.rng, got, cr)
		}
	}
}

func TestWriteRangeAndTruncateWire(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	base := bytes.Repeat([]byte{0xAA}, 8192)
	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/w.bin", tokAlice, base, nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	// Overwrite a range straddling the first block boundary.
	patch := bytes.Repeat([]byte{0x55}, 1000)
	resp, body = doReq(t, "PUT", hs.URL+"/v1/files/w.bin?offset=4000", tokAlice, patch, nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	want := append([]byte(nil), base...)
	copy(want[4000:], patch)
	resp, body = doReq(t, "GET", hs.URL+"/v1/files/w.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if !bytes.Equal(body, want) {
		t.Fatal("offset write did not splice the range")
	}

	// Offset write past EOF grows with a zero hole.
	resp, body = doReq(t, "PUT", hs.URL+"/v1/files/hole.bin?offset=10000", tokAlice, []byte("tail"), nil)
	wantStatus(t, resp, body, http.StatusNoContent)
	resp, body = doReq(t, "GET", hs.URL+"/v1/files/hole.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if len(body) != 10004 || !bytes.Equal(body[10000:], []byte("tail")) || !bytes.Equal(body[:10000], make([]byte, 10000)) {
		t.Fatalf("hole write: got %d bytes", len(body))
	}

	// Truncate shrinks; stat agrees.
	resp, body = doReq(t, "POST", hs.URL+"/v1/files/w.bin?truncate=100", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusNoContent)
	resp, body = doReq(t, "GET", hs.URL+"/v1/files/w.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if !bytes.Equal(body, want[:100]) {
		t.Fatalf("truncate: got %d bytes, want first 100 preserved", len(body))
	}

	// Truncate growing zero-fills.
	resp, body = doReq(t, "POST", hs.URL+"/v1/files/w.bin?truncate=300", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusNoContent)
	resp, body = doReq(t, "GET", hs.URL+"/v1/files/w.bin", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if len(body) != 300 || !bytes.Equal(body[100:], make([]byte, 200)) {
		t.Fatalf("grow truncate: got %d bytes", len(body))
	}
}

func TestBadRequestsWire(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, tc := range []struct {
		method, path string
	}{
		{"GET", "/v1/stat/" + strings.Repeat("x", 5000)},
		{"PUT", "/v1/files/ok.bin?offset=-3"},
		{"POST", "/v1/files/ok.bin?truncate=nope"},
		{"POST", "/v1/files/ok.bin"}, // POST without ?truncate
		{"GET", "/v1/list?dir=../up"},
		{"GET", "/v1/list?limit=0"},
	} {
		resp, body := doReq(t, tc.method, hs.URL+tc.path, tokAlice, []byte("x"), nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400 (%q)", tc.method, tc.path, resp.StatusCode, body)
		}
	}

	// Dirty paths never reach the handler with a dirty name: the mux
	// cleans and redirects them first, and storedName is the belt to
	// that suspender.
	for _, bad := range []string{"", ".", "..", "../up", "a//b", "/abs", "a/", "a/./b"} {
		if _, err := storedName("alice", bad); err == nil {
			t.Errorf("storedName accepted %q", bad)
		}
	}
	for _, ok := range []string{"a", "a/b", "dir/file.txt"} {
		name, err := storedName("alice", ok)
		if err != nil || name != "alice/"+ok {
			t.Errorf("storedName(%q) = %q, %v", ok, name, err)
		}
	}
}

func TestUploadCapWire(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxUploadBytes: 1024})
	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/big.bin", tokAlice, make([]byte, 4096), nil)
	wantStatus(t, resp, body, http.StatusRequestEntityTooLarge)
	resp, body = doReq(t, "PUT", hs.URL+"/v1/files/small.bin", tokAlice, make([]byte, 512), nil)
	wantStatus(t, resp, body, http.StatusNoContent)
}

func TestAdminPlaneWire(t *testing.T) {
	stores := make([]lamassu.Storage, 3)
	for i := range stores {
		stores[i] = lamassu.NewMemStorage()
	}
	sharded, err := lamassu.NewShardedStorage(stores, &lamassu.ShardOptions{Replicas: 2})
	if err != nil {
		t.Fatalf("NewShardedStorage: %v", err)
	}
	m, _ := newTestMount(t, sharded)
	_, hs := newTestServer(t, Config{Mount: m})

	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/seed.bin", tokAlice, make([]byte, 16384), nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	resp, body = doReq(t, "GET", hs.URL+"/admin/shards", tokAdmin, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	var shards struct {
		Stats  []lamassu.ShardStat   `json:"stats"`
		Health []lamassu.ShardHealth `json:"health"`
	}
	if err := json.Unmarshal(body, &shards); err != nil {
		t.Fatalf("shards JSON: %v", err)
	}
	if len(shards.Stats) != 3 || len(shards.Health) != 3 {
		t.Fatalf("shards: %d stats, %d health entries, want 3+3", len(shards.Stats), len(shards.Health))
	}
	var writes int64
	for _, s := range shards.Stats {
		writes += s.Writes
	}
	if writes == 0 {
		t.Fatal("admin shards report zero writes after a PUT")
	}

	resp, body = doReq(t, "GET", hs.URL+"/admin/rebalance", tokAdmin, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	var rs lamassu.RebalanceStatus
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatalf("rebalance JSON: %v", err)
	}
	if rs.Active {
		t.Fatal("no rebalance was started, status says Active")
	}

	resp, body = doReq(t, "GET", hs.URL+"/admin/stats", tokAdmin, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	var as struct {
		Engine  lamassu.EngineStats `json:"engine"`
		Limiter LimiterStats        `json:"limiter"`
	}
	if err := json.Unmarshal(body, &as); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if as.Engine.BackendIOs == 0 || as.Limiter.Admitted == 0 {
		t.Fatalf("admin stats look dead: %+v", as)
	}

	// Scrub over a replicated mount succeeds and reports a JSON doc.
	resp, body = doReq(t, "POST", hs.URL+"/admin/scrub", tokAdmin, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)

	// Scrub on an unsharded mount is a 409, not a 500.
	_, hs2 := newTestServer(t, Config{})
	resp, body = doReq(t, "POST", hs2.URL+"/admin/scrub", tokAdmin, nil, nil)
	wantStatus(t, resp, body, http.StatusConflict)
}

func TestHealthz(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := doReq(t, "GET", hs.URL+"/healthz", "", nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz body %q", body)
	}
}
