// Tenant isolation: the namespace carve is cryptographic, not a
// handler-level path check. Two tenants writing the same logical name
// must land distinct backend objects whose stored names are exactly
// the namecrypt encryption of the prefixed names, and no token can
// reach another tenant's data. Plus the 401/403 table for the auth
// layer.
package serve

import (
	"net/http"
	"strings"
	"testing"

	"lamassu"
	"lamassu/internal/backend"
	"lamassu/internal/cryptoutil"
	"lamassu/internal/namecrypt"
)

func TestTenantIsolationCryptographic(t *testing.T) {
	raw := backend.NewMemStore()
	m, keys := newTestMount(t, raw)
	_, hs := newTestServer(t, Config{Mount: m})

	// Same logical name, different tenants, different payloads.
	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/doc.txt", tokAlice, []byte("alice bytes"), nil)
	wantStatus(t, resp, body, http.StatusNoContent)
	resp, body = doReq(t, "PUT", hs.URL+"/v1/files/doc.txt", tokBob, []byte("bob bytes, different"), nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	// Each tenant reads back its own bytes.
	resp, body = doReq(t, "GET", hs.URL+"/v1/files/doc.txt", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if string(body) != "alice bytes" {
		t.Fatalf("alice read %q", body)
	}
	resp, body = doReq(t, "GET", hs.URL+"/v1/files/doc.txt", tokBob, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if string(body) != "bob bytes, different" {
		t.Fatalf("bob read %q", body)
	}

	// Direct namecrypt-layer assertion: the raw store's names are the
	// encrypted forms of the prefixed names — the tenant segment
	// encrypts to an opaque, per-tenant-distinct prefix, so the two
	// logical "doc.txt"s are distinct backend objects and neither
	// tenant's prefix is derivable from the other's.
	nameKey := cryptoutil.DeriveSubKey(keys.Outer, "lamassu-name-encryption")
	nc := namecrypt.New(backend.NewMemStore(), nameKey)
	encAlice, err := nc.EncryptSegment("alice")
	if err != nil {
		t.Fatalf("EncryptSegment: %v", err)
	}
	encBob, err := nc.EncryptSegment("bob")
	if err != nil {
		t.Fatalf("EncryptSegment: %v", err)
	}
	if encAlice == encBob {
		t.Fatal("tenant prefixes encrypt identically")
	}
	names, err := raw.List()
	if err != nil {
		t.Fatalf("raw List: %v", err)
	}
	var sawAlice, sawBob int
	for _, n := range names {
		prefix, _, ok := strings.Cut(n, "/")
		if !ok {
			t.Fatalf("raw store name %q has no tenant prefix segment", n)
		}
		switch prefix {
		case encAlice:
			sawAlice++
		case encBob:
			sawBob++
		default:
			t.Fatalf("raw store name %q is under neither tenant's encrypted prefix", n)
		}
		if strings.Contains(n, "alice") || strings.Contains(n, "bob") || strings.Contains(n, "doc.txt") {
			t.Fatalf("raw store name %q leaks a plaintext name component", n)
		}
	}
	if sawAlice == 0 || sawBob == 0 {
		t.Fatalf("expected backend objects under both tenants, got alice=%d bob=%d", sawAlice, sawBob)
	}

	// A tenant cannot phrase a request that resolves inside the other's
	// namespace: the obvious traversals are rejected or not-found.
	for _, path := range []string{
		"/v1/files/../bob/doc.txt", // cleans out of the carve -> 400
		"/v1/files/bob/doc.txt",    // resolves to alice/bob/doc.txt -> 404
	} {
		resp, body := doReq(t, "GET", hs.URL+path, tokAlice, nil, nil)
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s as alice: status %d (%q), want 400 or 404", path, resp.StatusCode, body)
		}
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("cross-tenant read succeeded: %q", body)
		}
	}

	// Removing my copy must not touch the other tenant's.
	resp, body = doReq(t, "DELETE", hs.URL+"/v1/files/doc.txt", tokAlice, nil, nil)
	wantStatus(t, resp, body, http.StatusNoContent)
	resp, body = doReq(t, "GET", hs.URL+"/v1/files/doc.txt", tokBob, nil, nil)
	wantStatus(t, resp, body, http.StatusOK)
	if string(body) != "bob bytes, different" {
		t.Fatalf("bob's copy changed after alice's delete: %q", body)
	}
}

func TestAuthTable(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	// Seed a file so 200s are possible.
	resp, body := doReq(t, "PUT", hs.URL+"/v1/files/f.txt", tokAlice, []byte("x"), nil)
	wantStatus(t, resp, body, http.StatusNoContent)

	cases := []struct {
		name, method, path, auth string // auth is the full header value ("" = none)
		want                     int
	}{
		{"no token, data", "GET", "/v1/files/f.txt", "", http.StatusUnauthorized},
		{"no token, list", "GET", "/v1/list", "", http.StatusUnauthorized},
		{"no token, admin", "GET", "/admin/shards", "", http.StatusUnauthorized},
		{"wrong scheme", "GET", "/v1/files/f.txt", "Basic " + tokAlice, http.StatusUnauthorized},
		{"empty bearer", "GET", "/v1/files/f.txt", "Bearer ", http.StatusUnauthorized},
		{"unknown token, data", "GET", "/v1/files/f.txt", "Bearer no-such-token-00000000", http.StatusUnauthorized},
		{"unknown token, admin", "GET", "/admin/shards", "Bearer no-such-token-00000000", http.StatusUnauthorized},
		{"tenant token on admin", "GET", "/admin/shards", "Bearer " + tokAlice, http.StatusForbidden},
		{"tenant token on scrub", "POST", "/admin/scrub", "Bearer " + tokBob, http.StatusForbidden},
		{"admin token on data", "GET", "/v1/files/f.txt", "Bearer " + tokAdmin, http.StatusForbidden},
		{"admin token on list", "GET", "/v1/list", "Bearer " + tokAdmin, http.StatusForbidden},
		{"valid tenant", "GET", "/v1/files/f.txt", "Bearer " + tokAlice, http.StatusOK},
		{"valid admin", "GET", "/admin/rebalance", "Bearer " + tokAdmin, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hdr := map[string]string{}
			if tc.auth != "" {
				hdr["Authorization"] = tc.auth
			}
			resp, body := doReq(t, tc.method, hs.URL+tc.path, "", nil, hdr)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (%q)", resp.StatusCode, tc.want, body)
			}
			if tc.want == http.StatusUnauthorized && resp.Header.Get("WWW-Authenticate") == "" {
				t.Fatal("401 without WWW-Authenticate")
			}
		})
	}
}

// TestNoAdminConfigured pins that a tenant file without an admin line
// leaves the admin plane unreachable rather than open.
func TestNoAdminConfigured(t *testing.T) {
	ten, err := ParseTenants([]byte("tenant: solo " + tokAlice + "\n"))
	if err != nil {
		t.Fatalf("ParseTenants: %v", err)
	}
	m, _ := newTestMount(t, lamassu.NewMemStorage())
	_, hs := newTestServer(t, Config{Mount: m, Tenants: ten})
	for _, tok := range []string{tokAlice, tokAdmin} {
		resp, body := doReq(t, "GET", hs.URL+"/admin/shards", tok, nil, nil)
		if resp.StatusCode != http.StatusUnauthorized && resp.StatusCode != http.StatusForbidden {
			t.Fatalf("admin reachable without configured admin token: %d %q", resp.StatusCode, body)
		}
	}
}
