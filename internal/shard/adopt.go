package shard

import (
	"context"
	"fmt"

	"lamassu/internal/backend"
	"lamassu/internal/shard/layout"
)

// TopologyError reports a persisted layout record that cannot be
// served by the configuration the deployment was opened with: the
// record needs more shard slots than stores were mounted, or declares
// a different replication factor than configured. It is a distinct
// type so openers can tell "valid deployment, wrong topology handed to
// it" from I/O failures — and so the mismatch surfaces as a clear
// error instead of an out-of-range slot index downstream.
type TopologyError struct {
	// RecordShards is the slot count the record requires; Mounted the
	// number of stores the deployment was opened with. Both 0 when the
	// mismatch is the replication factor.
	RecordShards int
	Mounted      int
	// RecordReplicas / Replicas report a replication-factor mismatch
	// (both 0 when the mismatch is the shard count).
	RecordReplicas int
	Replicas       int
}

func (e *TopologyError) Error() string {
	if e.RecordReplicas != 0 || e.Replicas != 0 {
		return fmt.Sprintf("shard: layout record declares %d-way replication, store configured for %d-way; the factor is part of the deployment's on-disk identity",
			e.RecordReplicas, e.Replicas)
	}
	return fmt.Sprintf("shard: layout record needs %d shard slots, only %d stores mounted",
		e.RecordShards, e.Mounted)
}

// AdoptLayout aligns the store with the layout records persisted on
// its shards, if any. It is the reopen half of the epoch subsystem:
//
//   - No records (a deployment that never rebalanced online): the
//     store stays at implicit epoch 0.
//   - Stable record: the parameters must match the configured store
//     list; the epoch number is adopted.
//   - Reaping record (a crash between the epoch commit and the end of
//     stale-copy removal): the reap is finished and the record settles
//     to stable.
//   - Migrating record: with the full (union) store list the store
//     reopens in dual-ring mode — every byte readable immediately, the
//     migration resumable via RunMover. With only the previous epoch's
//     store list (a grow abandoned after a crash) the store reopens as
//     that epoch; the half-built copies on the new shards are re-copied
//     if the migration is ever rerun.
//
// Records written by one deployment can diverge across shards after a
// crash mid-fanout; the most advanced record wins (Record.Newer),
// because every phase finishes its data work before fanning out the
// next record. expectEpoch, when nonzero, asserts the settled epoch
// after adoption and fails the open on mismatch — a guard against
// mounting a rebalanced deployment with a stale topology.
func (s *Store) AdoptLayout(ctx context.Context, expectEpoch uint64) error {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	t := s.topo.Load()
	if t.mig != nil {
		return fmt.Errorf("shard: AdoptLayout with a migration already active")
	}
	var (
		best  layout.Record
		found bool
	)
	for _, u := range t.uniq {
		rec, ok, err := layout.ReadRecord(ctx, u.store)
		if err != nil {
			return fmt.Errorf("shard: reading layout record: %w", err)
		}
		if ok && (!found || rec.Newer(best)) {
			best, found = rec, true
		}
	}
	if !found {
		if expectEpoch != 0 {
			return fmt.Errorf("shard: layout epoch is 0 (no record), want %d", expectEpoch)
		}
		// A replicated deployment that never migrated has no record,
		// which would let a later single-copy open adopt it silently
		// and stop maintaining replicas. Pin the factor on disk at
		// first adoption (stable epoch-0 v2 record). Single-copy
		// deployments stay recordless — their on-disk bytes are
		// pinned by the pre-replication goldens.
		if t.lay.Replicas() > 1 {
			rec := layout.Record{
				Epoch:       t.lay.Epoch(),
				State:       layout.StateStable,
				Shards:      t.lay.Shards(),
				Vnodes:      t.lay.Vnodes(),
				StripeBytes: t.lay.StripeBytes(),
				Replicas:    t.lay.Replicas(),
			}
			for _, u := range t.uniq {
				if err := layout.WriteRecord(ctx, u.store, rec); err != nil {
					return fmt.Errorf("shard: pinning replication factor: %w", err)
				}
			}
		}
		return nil
	}
	if best.StripeBytes != t.lay.StripeBytes() {
		return fmt.Errorf("shard: layout record stripe %d does not match configured %d",
			best.StripeBytes, t.lay.StripeBytes())
	}
	// The replication factor is persisted (format v2) and must match the
	// configuration exactly: adopting an R-way deployment single-copy
	// would silently stop maintaining replicas, and the reverse would
	// treat missing copies as damage. v1 records count as R=1.
	if rr, cr := best.ReplicaCount(), t.lay.Replicas(); rr != cr {
		return &TopologyError{RecordReplicas: rr, Replicas: cr}
	}
	switch best.State {
	case layout.StateStable, layout.StateReaping:
		if best.Shards > len(t.stores) {
			// Checked before the parameter comparison below so the
			// caller sees "you mounted too few stores" rather than a
			// generic mismatch (or, worse, a slot index panic in a path
			// that trusted the record).
			return &TopologyError{RecordShards: best.Shards, Mounted: len(t.stores)}
		}
		if best.Shards != t.lay.Shards() || best.Vnodes != t.lay.Vnodes() {
			return fmt.Errorf("shard: deployment is at epoch %d with %d shards x %d vnodes; got %d x %d (was it rebalanced elsewhere?)",
				best.Epoch, best.Shards, best.Vnodes, t.lay.Shards(), t.lay.Vnodes())
		}
		nt := &topology{
			stores: t.stores,
			uniq:   t.uniq,
			lay:    t.lay.WithEpoch(best.Epoch),
			stats:  t.stats,
			health: t.health,
		}
		if best.State == layout.StateReaping {
			// The epoch committed but the crash interrupted stale-copy
			// removal; finish it and settle the record.
			var st RebalanceStats
			if err := reapStale(ctx, nt.stores, nt.uniq, nt.lay, &st); err != nil {
				return fmt.Errorf("shard: finishing interrupted reap: %w", err)
			}
			rec := best
			rec.State = layout.StateStable
			rec.PrevShards, rec.PrevVnodes = 0, 0
			for _, u := range nt.uniq {
				if err := layout.WriteRecord(ctx, u.store, rec); err != nil {
					return err
				}
			}
		}
		s.topo.Store(nt)
		s.routeGen.Add(1)
		return checkEpoch(nt.lay.Epoch(), expectEpoch)
	case layout.StateMigrating:
		union := max(best.Shards, best.PrevShards)
		switch {
		case len(t.stores) == union:
			if best.Vnodes != t.lay.Vnodes() {
				return fmt.Errorf("shard: migration record has %d vnodes, configured %d", best.Vnodes, t.lay.Vnodes())
			}
			curLay, err := layout.New(best.Epoch, best.Shards, best.Vnodes, best.StripeBytes)
			if err != nil {
				return err
			}
			prevLay, err := layout.New(best.Epoch-1, best.PrevShards, best.PrevVnodes, best.StripeBytes)
			if err != nil {
				return err
			}
			// Both epochs share the deployment's replication factor
			// (checked against the configuration above).
			curLay = curLay.WithReplicas(best.ReplicaCount())
			prevLay = prevLay.WithReplicas(best.ReplicaCount())
			s.topo.Store(&topology{
				stores: t.stores,
				uniq:   t.uniq,
				lay:    curLay,
				mig:    newMigration(prevLay),
				stats:  t.stats,
				health: t.health,
			})
			s.routeGen.Add(1)
			return checkEpoch(prevLay.Epoch(), expectEpoch)
		case len(t.stores) == best.PrevShards:
			// The previous epoch's view of a grow that crashed
			// mid-migration: dual-writes kept these shards complete, so
			// serve the old epoch as-is.
			if best.PrevVnodes != t.lay.Vnodes() {
				return fmt.Errorf("shard: migration record has %d prev-vnodes, configured %d", best.PrevVnodes, t.lay.Vnodes())
			}
			s.topo.Store(&topology{
				stores: t.stores,
				uniq:   t.uniq,
				lay:    t.lay.WithEpoch(best.Epoch - 1),
				stats:  t.stats,
				health: t.health,
			})
			s.routeGen.Add(1)
			return checkEpoch(best.Epoch-1, expectEpoch)
		default:
			return fmt.Errorf("shard: interrupted migration %d->%d shards: open with the previous %d stores or the full %d to resume (got %d)",
				best.PrevShards, best.Shards, best.PrevShards, union, len(t.stores))
		}
	default:
		return fmt.Errorf("shard: layout record in unknown state %v", best.State)
	}
}

// checkEpoch enforces the expectEpoch assertion (0 = any).
func checkEpoch(got, want uint64) error {
	if want != 0 && got != want {
		return fmt.Errorf("shard: layout epoch is %d, want %d", got, want)
	}
	return nil
}

// ResumableMigration reports whether the store reopened into an
// interrupted migration (AdoptLayout found a migrating record) whose
// mover is not running; RunMover (or Mount.StartRebalance with the
// same target) resumes it.
func (s *Store) ResumableMigration() ([]backend.Store, bool) {
	t := s.topo.Load()
	if t.mig == nil || t.mig.moverRunning.Load() {
		return nil, false
	}
	return append([]backend.Store(nil), t.curStores()...), true
}
