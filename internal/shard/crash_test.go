package shard_test

import (
	"math/rand"
	"testing"

	"lamassu/internal/backend"
	"lamassu/internal/core"
	"lamassu/internal/faultfs"
	"lamassu/internal/layout"
	"lamassu/internal/shard"
	"lamassu/internal/vfs"
)

// crashHarness is a sharded store with every shard wrapped in its own
// fault injector: a crash takes down ONE shard while the others keep
// accepting writes — the partial-failure schedule a single-store
// deployment can never produce.
type crashHarness struct {
	store  *shard.Store
	faults []*faultfs.Store
}

func newCrashHarness(t *testing.T, shards int, stripe int64) *crashHarness {
	t.Helper()
	stores := make([]backend.Store, shards)
	faults := make([]*faultfs.Store, shards)
	for i := range stores {
		faults[i] = faultfs.New(backend.NewMemStore())
		stores[i] = faults[i]
	}
	s, err := shard.New(stores, shard.Config{StripeBytes: stripe})
	if err != nil {
		t.Fatal(err)
	}
	return &crashHarness{store: s, faults: faults}
}

func (h *crashHarness) disarmAll() {
	for _, f := range h.faults {
		f.Disarm()
	}
}

// crashWorkload overwrites whole blocks at seeded offsets; per-block
// atomicity means each block may legitimately hold only its initial
// value or one of the values written to it.
func crashWorkload(f vfs.File, nBlocks, blockSize int, seed int64) ([]map[string]bool, error) {
	legit := make([]map[string]bool, nBlocks)
	zero := string(make([]byte, blockSize))
	for i := range legit {
		legit[i] = map[string]bool{zero: true}
	}
	rng := rand.New(rand.NewSource(seed))
	var firstErr error
	for i := 0; i < 40 && firstErr == nil; i++ {
		b := rng.Intn(nBlocks)
		block := make([]byte, blockSize)
		rng.Read(block)
		legit[b][string(block)] = true
		if _, err := f.WriteAt(block, int64(b*blockSize)); err != nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = f.Sync()
	}
	return legit, firstErr
}

// TestCrashOneShardMidParallelCommit sweeps a crash of each individual
// shard across every write point of a parallel commit workload over a
// striped file. After the "reboot" (injector disarmed), recovery must
// leave every shard consistent: the audit is clean, the global size is
// intact, and every block holds a value the workload legitimately
// produced — even though the surviving shards kept absorbing phase-2
// writes after the victim shard died.
func TestCrashOneShardMidParallelCommit(t *testing.T) {
	geo, err := layout.NewGeometry(512, 4)
	if err != nil {
		t.Fatal(err)
	}
	const (
		shards  = 3
		nBlocks = 60
		bs      = 512
	)
	stripe := int64(2 * bs) // 2 blocks per stripe: heavy cross-shard traffic
	cfg := core.Config{Inner: testKey(1), Outer: testKey(2), Geometry: geo, Parallelism: 4}

	// Dry run to count each shard's writes.
	dry := newCrashHarness(t, shards, stripe)
	dfs, err := core.New(dry.store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]byte, nBlocks*bs)
	if err := vfs.WriteAll(dfs, "f", initial); err != nil {
		t.Fatal(err)
	}
	for _, f := range dry.faults {
		f.ResetWriteCount()
	}
	fw, err := dfs.OpenRW("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crashWorkload(fw, nBlocks, bs, 31); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	writesPerShard := make([]int64, shards)
	for i, f := range dry.faults {
		writesPerShard[i] = f.WriteCount()
		if writesPerShard[i] == 0 {
			t.Fatalf("dry run routed no writes to shard %d; widen the workload", i)
		}
	}

	stride := int64(3)
	if testing.Short() {
		stride = 11
	}
	for victim := 0; victim < shards; victim++ {
		for crashAt := int64(1); crashAt <= writesPerShard[victim]; crashAt += stride {
			h := newCrashHarness(t, shards, stripe)
			lfs, err := core.New(h.store, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := vfs.WriteAll(lfs, "f", initial); err != nil {
				t.Fatal(err)
			}

			h.faults[victim].Arm(faultfs.ModeCrashAfter, crashAt, 0)
			fw, err := lfs.OpenRW("f")
			if err != nil {
				t.Fatalf("victim=%d crashAt=%d: open: %v", victim, crashAt, err)
			}
			legit, werr := crashWorkload(fw, nBlocks, bs, 31)
			_ = fw.Close() // post-crash close errors are expected
			if werr == nil && h.faults[victim].Crashed() {
				t.Fatalf("victim=%d crashAt=%d: workload succeeded despite crash", victim, crashAt)
			}
			h.disarmAll()

			// Reboot: recover, audit, and check per-block atomicity.
			if _, err := lfs.Recover("f"); err != nil {
				t.Fatalf("victim=%d crashAt=%d: recovery failed: %v", victim, crashAt, err)
			}
			rep, err := lfs.Check("f")
			if err != nil {
				t.Fatalf("victim=%d crashAt=%d: check: %v", victim, crashAt, err)
			}
			if !rep.Clean() {
				t.Fatalf("victim=%d crashAt=%d: post-recovery audit dirty: %+v", victim, crashAt, rep)
			}
			got, err := vfs.ReadAll(lfs, "f")
			if err != nil {
				t.Fatalf("victim=%d crashAt=%d: read after recovery: %v", victim, crashAt, err)
			}
			if len(got) != len(initial) {
				t.Fatalf("victim=%d crashAt=%d: size changed: %d", victim, crashAt, len(got))
			}
			for b := 0; b < nBlocks; b++ {
				if !legit[b][string(got[b*bs:(b+1)*bs])] {
					t.Fatalf("victim=%d crashAt=%d: block %d holds a value the workload never produced",
						victim, crashAt, b)
				}
			}

			// Every shard individually is consistent with the global
			// view: no shard's stripe file outgrew the physical size.
			phys, err := h.store.Stat("f")
			if err != nil {
				t.Fatal(err)
			}
			for i, bst := range h.store.Shards() {
				local, err := bst.Stat("f")
				if err != nil {
					continue // shard holds no stripe of f
				}
				if local > phys {
					t.Fatalf("victim=%d crashAt=%d: shard %d local size %d exceeds physical size %d",
						victim, crashAt, i, local, phys)
				}
			}
		}
	}
}

// A crash of EVERY shard at once (power loss of the whole fabric) at
// an arbitrary point of a parallel commit must also recover — the
// sharded analogue of the single-store sweep in internal/core.
func TestCrashAllShardsMidParallelCommit(t *testing.T) {
	geo, err := layout.NewGeometry(512, 4)
	if err != nil {
		t.Fatal(err)
	}
	const (
		shards  = 3
		nBlocks = 40
		bs      = 512
	)
	stripe := int64(2 * bs)
	cfg := core.Config{Inner: testKey(1), Outer: testKey(2), Geometry: geo, Parallelism: 4}
	initial := make([]byte, nBlocks*bs)

	stride := int64(2)
	if testing.Short() {
		stride = 7
	}
	for crashAt := int64(1); crashAt <= 30; crashAt += stride {
		h := newCrashHarness(t, shards, stripe)
		lfs, err := core.New(h.store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteAll(lfs, "f", initial); err != nil {
			t.Fatal(err)
		}
		for _, f := range h.faults {
			f.Arm(faultfs.ModeCrashAfter, crashAt, 0)
		}
		fw, err := lfs.OpenRW("f")
		if err != nil {
			t.Fatal(err)
		}
		legit, _ := crashWorkload(fw, nBlocks, bs, 33)
		_ = fw.Close()
		h.disarmAll()

		if _, err := lfs.Recover("f"); err != nil {
			t.Fatalf("crashAt=%d: recovery failed: %v", crashAt, err)
		}
		rep, err := lfs.Check("f")
		if err != nil || !rep.Clean() {
			t.Fatalf("crashAt=%d: audit: %+v, %v", crashAt, rep, err)
		}
		got, err := vfs.ReadAll(lfs, "f")
		if err != nil || len(got) != len(initial) {
			t.Fatalf("crashAt=%d: read: %d bytes, %v", crashAt, len(got), err)
		}
		for b := 0; b < nBlocks; b++ {
			if !legit[b][string(got[b*bs:(b+1)*bs])] {
				t.Fatalf("crashAt=%d: block %d holds a value the workload never produced", crashAt, b)
			}
		}
	}
}
