package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"lamassu/internal/backend"
	"lamassu/internal/metrics"
)

// file is an open handle to one (possibly striped) backing file. The
// routed slot for byte 0 is opened eagerly by Store.Open; handles to
// the shards holding other stripes — and, mid-migration, to the other
// epoch's owners — open lazily on first touch. Every operation
// resolves its target slots against the Store's CURRENT topology
// snapshot, so a handle opened before a migration began routes
// correctly during and after it.
//
// Concurrency matches the backend.File contract the engine relies on:
// concurrent ReadAt and concurrent WriteAt are safe (the handle map
// has its own mutex; the per-shard files do their own serialization),
// so commit fan-out may write several stripes of one file at once.
type file struct {
	store *Store
	name  string
	flag  backend.OpenFlag

	mu     sync.Mutex
	closed bool
	files  map[int]backend.File
	// missing marks shards a read probed and found without a stripe
	// file; their ranges read as zeros (hole semantics) without
	// re-probing. A write through THIS handle clears the mark when it
	// creates the stripe; another handle creating it is outside the
	// single-writer model, as with every other stale-read case. The
	// marks are valid only for one routing generation: a migration can
	// relocate data ONTO a slot that legitimately probed empty earlier,
	// so handle() drops them all when Store.routeGen moves.
	missing    map[int]bool
	missingGen uint64
}

// handle returns the backend.File for one shard slot, opening it on
// first use. Only writes (forWrite) may create a missing stripe file;
// a read that finds none gets (nil, nil) and treats the range as a
// hole — a pure read workload must never materialize empty stripe
// files on shards that hold no data.
func (f *file) handle(ctx context.Context, t *topology, shard int, forWrite bool) (backend.File, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, backend.ErrClosed
	}
	if h, ok := f.files[shard]; ok {
		f.mu.Unlock()
		return h, nil
	}
	if gen := f.store.routeGen.Load(); gen != f.missingGen {
		// Routing moved (migration progress or an epoch transition):
		// negative probes may have been invalidated by relocated data.
		f.missing = nil
		f.missingGen = gen
	}
	if !forWrite && f.missing[shard] {
		f.mu.Unlock()
		return nil, nil
	}
	flag := backend.OpenWrite
	switch {
	case f.flag == backend.OpenRead:
		flag = backend.OpenRead
	case forWrite:
		flag = backend.OpenCreate
	}
	// Open outside the lock: a slow first-touch open (network
	// backend) must not stall I/O to shards that are already open.
	// Concurrent openers race; the loser closes its handle.
	f.mu.Unlock()
	h, err := backend.OpenCtx(ctx, t.stores[shard], f.name, flag)

	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		if flag != backend.OpenCreate && errors.Is(err, backend.ErrNotExist) {
			if f.missing == nil {
				f.missing = make(map[int]bool)
			}
			f.missing[shard] = true
			return nil, nil
		}
		return nil, err
	}
	if f.closed {
		h.Close()
		return nil, backend.ErrClosed
	}
	if existing, ok := f.files[shard]; ok {
		h.Close()
		return existing, nil
	}
	delete(f.missing, shard)
	f.files[shard] = h
	return h, nil
}

// openHandles snapshots the currently open per-shard handles.
func (f *file) openHandles() (map[int]backend.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, backend.ErrClosed
	}
	out := make(map[int]backend.File, len(f.files))
	for s, h := range f.files {
		out[s] = h
	}
	return out, nil
}

// striped reports whether ranges of this file can live on different
// shards under topology t.
func striped(t *topology) bool { return t.lay.StripeBytes() > 0 }

// Size implements backend.File: the maximum local size across shards
// (see Store.Stat for why the maximum is exact).
func (f *file) Size() (int64, error) { return f.size(nil, f.store.topo.Load()) }

func (f *file) size(ctx context.Context, t *topology) (int64, error) {
	if t.replicated() {
		return f.sizeReplicated(ctx, t)
	}
	slot, _ := t.readTarget(f.name, 0)
	h, err := f.handle(ctx, t, slot, false)
	if err != nil {
		return 0, err
	}
	var size int64
	if h != nil {
		size, err = h.Size()
		if err != nil {
			return 0, err
		}
	}
	if !striped(t) {
		return size, nil
	}
	sized := t.stores[slot]
	open, err := f.openHandles()
	if err != nil {
		return 0, err
	}
	for _, u := range t.uniq {
		if u.store == sized {
			continue
		}
		var sz int64
		if oh, ok := open[u.shard]; ok {
			sz, err = oh.Size()
		} else {
			sz, err = u.store.Stat(f.name)
			if errors.Is(err, backend.ErrNotExist) {
				continue
			}
		}
		if err != nil {
			return 0, err
		}
		if sz > size {
			size = sz
		}
	}
	return size, nil
}

// sizeReplicated computes the file's global size with failover: the
// home-owner group is consulted whole (max across reachable owners),
// and the striped sweep skips unreachable stores — exact under a
// single shard loss because every stripe's extent lives on every owner
// of that stripe.
func (f *file) sizeReplicated(ctx context.Context, t *topology) (int64, error) {
	s := f.store
	slots, _ := t.readTargets(f.name, 0)
	var size int64
	got := false
	var firstErr error
	consulted := make(map[backend.Store]bool, len(t.uniq))
	for _, sl := range t.dedupSlots(slots) {
		consulted[t.stores[sl]] = true
		h, err := f.handle(ctx, t, sl, false)
		if err != nil {
			if immediateErr(ctx, err) {
				return 0, err
			}
			s.slotFailed(t, sl)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if h == nil {
			got = true // live owner, no copy: local size 0
			continue
		}
		sz, err := h.Size()
		if err != nil {
			if immediateErr(ctx, err) {
				return 0, err
			}
			s.slotFailed(t, sl)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		t.health[sl].ok()
		if sz > size {
			size = sz
		}
		got = true
	}
	if !got {
		return 0, firstErr
	}
	if !striped(t) {
		return size, nil
	}
	open, err := f.openHandles()
	if err != nil {
		return 0, err
	}
	for _, u := range t.uniq {
		if consulted[u.store] {
			continue
		}
		var sz int64
		var serr error
		if oh, ok := open[u.shard]; ok {
			sz, serr = oh.Size()
		} else {
			sz, serr = u.store.Stat(f.name)
			if errors.Is(serr, backend.ErrNotExist) {
				continue
			}
		}
		if serr != nil {
			if immediateErr(ctx, serr) {
				return 0, serr
			}
			s.slotFailed(t, u.shard)
			continue
		}
		if sz > size {
			size = sz
		}
	}
	return size, nil
}

// readChunkReplicated reads one placement range, failing over across
// the key's replica set. served=false (with a nil error) reports a
// hole: no replica holds a copy of the range. A clean miss on a live
// replica outranks an error from a dead one — the write path
// guarantees every durable range has a copy inside the live owner
// group, so "the live owners agree it is a hole" is authoritative.
// Breaker-open owners are probed only when no live owner gave a
// definitive answer.
func (f *file) readChunkReplicated(ctx context.Context, t *topology, chunk []byte, off int64) (int, bool, error) {
	s := f.store
	slots, fellBack := t.readTargets(f.name, off)
	if fellBack {
		t.mig.noteFallback()
	}
	var order, deferred []int
	pref := -1
	for _, sl := range t.dedupSlots(slots) {
		if pref < 0 {
			pref = sl
		}
		if t.health[sl].allowed() {
			order = append(order, sl)
		} else {
			deferred = append(deferred, sl)
		}
	}
	var firstErr error
	sawMissing := false
	attempts := 0
	try := func(list []int) (int, bool, error, bool) {
		for _, sl := range list {
			h, herr := f.handle(ctx, t, sl, false)
			if herr != nil {
				if immediateErr(ctx, herr) {
					return 0, false, herr, true
				}
				s.slotFailed(t, sl)
				if firstErr == nil {
					firstErr = herr
				}
				attempts++
				continue
			}
			if h == nil {
				sawMissing = true
				attempts++
				continue
			}
			m, rerr := backend.ReadAtCtx(ctx, h, chunk, off)
			t.countRead(sl, m)
			if rerr != nil && !errors.Is(rerr, io.EOF) {
				if immediateErr(ctx, rerr) {
					return m, true, rerr, true
				}
				s.slotFailed(t, sl)
				if firstErr == nil {
					firstErr = rerr
				}
				attempts++
				continue
			}
			t.health[sl].ok()
			// A failover read is any read the primary owner did not
			// serve — whether it failed just now (attempts > 0) or is
			// exiled by its breaker and was never tried.
			if attempts > 0 || sl != pref {
				s.noteFailoverRead()
			}
			return m, true, rerr, true
		}
		return 0, false, nil, false
	}
	if m, served, err, done := try(order); done {
		return m, served, err
	}
	if !sawMissing {
		if m, served, err, done := try(deferred); done {
			return m, served, err
		}
	}
	if sawMissing || firstErr == nil {
		return 0, false, nil
	}
	return 0, false, firstErr
}

// stripeRange describes the part of a request hitting one stripe.
type stripeRange struct {
	off   int64 // global offset (stripes keep global offsets)
	bufLo int
	bufHi int
}

// splitStripes cuts the request [off, off+n) at stripe boundaries.
// Both epochs share the stripe unit, so each range resolves to one
// placement key (and thus one read slot, or one dual-write pair).
func splitStripes(t *topology, off int64, n int) []stripeRange {
	stripe := t.lay.StripeBytes()
	out := make([]stripeRange, 0, int(int64(n)/stripe)+2)
	pos := off
	end := off + int64(n)
	for pos < end {
		next := (pos/stripe + 1) * stripe
		if next > end {
			next = end
		}
		out = append(out, stripeRange{
			off:   pos,
			bufLo: int(pos - off),
			bufHi: int(next - off),
		})
		pos = next
	}
	return out
}

// ReadAt implements io.ReaderAt. Ranges on shards whose stripe file is
// shorter than the file's global size (sparse stripes) read as zeros,
// preserving the hole semantics of an unsharded backing file.
func (f *file) ReadAt(p []byte, off int64) (int, error) { return f.readAt(nil, p, off) }

// ReadAtCtx implements backend.FileCtx: cancellation is observed
// between the per-stripe reads, and the context is forwarded to each
// shard's store.
func (f *file) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	return f.readAt(ctx, p, off)
}

func (f *file) readAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("shard: negative offset %d", off)
	}
	t := f.store.topo.Load()
	if !striped(t) {
		if t.replicated() {
			n, served, err := f.readChunkReplicated(ctx, t, p, off)
			if !served && err == nil {
				return 0, io.EOF
			}
			return n, err
		}
		slot, fellBack := t.readTarget(f.name, 0)
		if fellBack {
			t.mig.noteFallback()
		}
		h, err := f.handle(ctx, t, slot, false)
		if err != nil {
			return 0, err
		}
		if h == nil {
			return 0, io.EOF
		}
		n, err := backend.ReadAtCtx(ctx, h, p, off)
		t.countRead(slot, n)
		return n, err
	}
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	// Optimistic path: read each stripe range and resolve the global
	// size ONLY when a range comes back short — locally a short read
	// cannot distinguish a hole inside the file from true EOF, but a
	// fully satisfied request needs neither, which keeps the common
	// case (reading materialized blocks) free of the per-shard Stat
	// round that computing the size costs.
	size := int64(-1)
	resolve := func() (int64, error) {
		if size < 0 {
			s, err := f.size(ctx, t)
			if err != nil {
				return 0, err
			}
			size = s
		}
		return size, nil
	}
	for _, r := range splitStripes(t, off, len(p)) {
		if err := backend.CtxErr(ctx); err != nil {
			return r.bufLo, err
		}
		chunk := p[r.bufLo:r.bufHi]
		m := 0
		if t.replicated() {
			var rerr error
			m, _, rerr = f.readChunkReplicated(ctx, t, chunk, r.off)
			if rerr != nil && !errors.Is(rerr, io.EOF) {
				return r.bufLo + m, rerr
			}
		} else {
			slot, fellBack := t.readTarget(f.name, r.off)
			if fellBack {
				t.mig.noteFallback()
			}
			h, err := f.handle(ctx, t, slot, false)
			if err != nil {
				return r.bufLo, err
			}
			if h != nil {
				var rerr error
				m, rerr = backend.ReadAtCtx(ctx, h, chunk, r.off)
				t.countRead(slot, m)
				if rerr != nil && !errors.Is(rerr, io.EOF) {
					return r.bufLo + m, rerr
				}
			}
		}
		if m == len(chunk) {
			continue
		}
		// Short (or missing) stripe: hole up to the global size, EOF
		// beyond it.
		sz, err := resolve()
		if err != nil {
			return r.bufLo + m, err
		}
		valid := sz - r.off
		if valid < int64(m) {
			// The size was resolved by an earlier range and a racing
			// append has moved EOF since; the local read itself proves
			// bytes exist through r.off+m.
			valid = int64(m)
		}
		if valid <= 0 {
			// Everything before this range was fully read (so the file
			// ends exactly at r.off), or the request starts at or past
			// EOF.
			return r.bufLo, io.EOF
		}
		if valid < int64(len(chunk)) {
			clear(chunk[m:valid])
			return r.bufLo + int(valid), io.EOF
		}
		clear(chunk[m:])
	}
	return len(p), nil
}

// WriteAt implements io.WriterAt, routing each stripe of the payload
// to its owning shard (stripe files are created on first write).
func (f *file) WriteAt(p []byte, off int64) (int, error) { return f.writeAt(nil, p, off) }

// WriteAtCtx implements backend.FileCtx: cancellation is observed
// between the per-stripe writes, so a canceled multi-stripe write is a
// clean cut at a stripe boundary (stripes are block-aligned, so the
// engine's whole-block crash model is preserved).
func (f *file) WriteAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	return f.writeAt(ctx, p, off)
}

// writeRange lands one stripe-aligned chunk. Mid-migration a
// relocated key is dual-written — previous owner first (that copy
// must stay complete until the epoch commits, because a crash drops
// every in-memory confirmation back onto it), current owner second —
// under the key's migration lock so the pair cannot interleave with
// the mover copying the same key.
func (f *file) writeRange(ctx context.Context, t *topology, chunk []byte, off int64) (int, error) {
	if t.replicated() {
		return f.writeRangeReplicated(ctx, t, chunk, off)
	}
	primary, mirror, mirrored, key := t.writeTargets(f.name, off)
	if mirrored {
		kl := t.mig.keyLock(key)
		kl.Lock()
		defer kl.Unlock()
		t.mig.noteMirror()
	}
	h, err := f.handle(ctx, t, primary, true)
	if err != nil {
		return 0, err
	}
	n, err := backend.WriteAtCtx(ctx, h, chunk, off)
	t.countWrite(primary, n)
	if err != nil || !mirrored {
		return n, err
	}
	mh, err := f.handle(ctx, t, mirror, true)
	if err != nil {
		return 0, err
	}
	mn, err := backend.WriteAtCtx(ctx, mh, chunk, off)
	t.countWrite(mirror, mn)
	if err != nil {
		return mn, err
	}
	return n, nil
}

// immediateErr reports errors that must abort an operation instead of
// triggering failover: the caller's context died, or the handle/store
// itself is unusable regardless of which shard is asked.
func immediateErr(ctx context.Context, err error) bool {
	return backend.CtxErr(ctx) != nil ||
		errors.Is(err, backend.ErrClosed) || errors.Is(err, backend.ErrReadOnly)
}

// writeRangeReplicated lands one stripe-aligned chunk on every owner
// of its key. The write succeeds when each epoch group (one group when
// stable, previous-then-current mid-migration) has at least one copy
// down; owners the write could not reach are marked suspect in the
// health tracker and journaled so Scrub restores full replication.
// Breaker-open owners are skipped (and journaled) unless they are a
// group's last hope, in which case they are attempted anyway — the
// breaker sheds latency, never durability.
func (f *file) writeRangeReplicated(ctx context.Context, t *topology, chunk []byte, off int64) (int, error) {
	s := f.store
	groups, key, mirrored := t.writeGroups(f.name, off)
	if mirrored {
		kl := t.mig.keyLock(key)
		kl.Lock()
		defer kl.Unlock()
		t.mig.noteMirror()
	} else if sc := s.scrub.Load(); sc != nil {
		kl := sc.keyLock(key)
		kl.Lock()
		defer kl.Unlock()
	}
	type outcome struct {
		n   int
		err error
	}
	// One write per physical store, even when a slot appears in both
	// epoch groups (or several carve slots share a store).
	results := make(map[backend.Store]outcome, 4)
	attempt := func(slot int) outcome {
		st := t.stores[slot]
		if r, ok := results[st]; ok {
			return r
		}
		var r outcome
		h, err := f.handle(ctx, t, slot, true)
		if err == nil {
			r.n, err = backend.WriteAtCtx(ctx, h, chunk, off)
			t.countWrite(slot, r.n)
		}
		r.err = err
		results[st] = r
		return r
	}
	n := -1
	for _, group := range groups {
		group = t.dedupSlots(group)
		var allowed, deferred []int
		for _, sl := range group {
			if t.health[sl].allowed() {
				allowed = append(allowed, sl)
			} else {
				deferred = append(deferred, sl)
			}
		}
		okCount := 0
		var firstErr error
		runList := func(list []int) error {
			for _, sl := range list {
				r := attempt(sl)
				if r.err == nil {
					t.health[sl].ok()
					okCount++
					if n < 0 {
						n = r.n
					}
					if sl != group[0] {
						s.noteReplicaWrite()
					}
					continue
				}
				if immediateErr(ctx, r.err) {
					return r.err
				}
				s.slotFailed(t, sl)
				s.noteWriteMiss(key, sl)
				if firstErr == nil {
					firstErr = r.err
				}
			}
			return nil
		}
		if err := runList(allowed); err != nil {
			return 0, err
		}
		if okCount == 0 {
			if err := runList(deferred); err != nil {
				return 0, err
			}
		} else {
			for _, sl := range deferred {
				s.noteWriteMiss(key, sl)
			}
		}
		if okCount == 0 {
			return 0, firstErr
		}
	}
	return n, nil
}

func (f *file) writeAt(ctx context.Context, p []byte, off int64) (int, error) {
	if f.flag == backend.OpenRead {
		return 0, backend.ErrReadOnly
	}
	if off < 0 {
		return 0, fmt.Errorf("shard: negative offset %d", off)
	}
	if len(p) == 0 {
		if err := f.checkOpen(); err != nil {
			return 0, err
		}
		return 0, nil
	}
	t := f.store.topo.Load()
	if !striped(t) {
		return f.writeRange(ctx, t, p, off)
	}
	for _, r := range splitStripes(t, off, len(p)) {
		if err := backend.CtxErr(ctx); err != nil {
			return r.bufLo, err
		}
		m, err := f.writeRange(ctx, t, p[r.bufLo:r.bufHi], r.off)
		if err != nil {
			return r.bufLo + m, err
		}
	}
	return len(p), nil
}

// Truncate implements backend.File. Every shard's stripe file is
// capped at size, and the shard owning the final byte is extended (or
// pinned) to exactly size so the global maximum equals size.
func (f *file) Truncate(size int64) error { return f.truncate(nil, size) }

// TruncateCtx implements backend.FileCtx. Cancellation is observed
// between per-shard truncates; a canceled multi-shard cut must be
// retried (as after a crash) before the global size is trustworthy.
func (f *file) TruncateCtx(ctx context.Context, size int64) error {
	return f.truncate(ctx, size)
}

func (f *file) truncate(ctx context.Context, size int64) error {
	if f.flag == backend.OpenRead {
		return backend.ErrReadOnly
	}
	if size < 0 {
		return fmt.Errorf("shard: negative size %d", size)
	}
	t := f.store.topo.Load()
	if t.mig != nil {
		// A cut changes every store's copy; exclude the mover's copies
		// of this file (its per-key copy would otherwise re-extend a
		// freshly capped destination with pre-truncate bytes).
		fl := t.mig.fileLock(f.name)
		fl.Lock()
		defer fl.Unlock()
	}
	if sc := f.store.scrub.Load(); sc != nil {
		// Same exclusion against the scrubber's repair copies.
		fl := sc.fileLock(f.name)
		fl.Lock()
		defer fl.Unlock()
	}
	if t.replicated() {
		return f.truncateReplicated(ctx, t, size)
	}
	if !striped(t) {
		if t.mig == nil {
			// Stable whole-file placement: one copy, one call — the
			// steady-state path stays free of per-store Stat sweeps.
			return f.truncateAnchor(ctx, t, t.lay.ShardOf(f.name, 0), size)
		}
		if err := f.truncateSlots(ctx, t, size); err != nil {
			return err
		}
		// Pin the exact size on every slot that must exist: the routed
		// (authoritative) slot, plus the current home so the
		// post-commit epoch agrees.
		slot, _ := t.readTarget(f.name, 0)
		if err := f.truncateAnchor(ctx, t, slot, size); err != nil {
			return err
		}
		if home := t.homeShard(f.name); home != slot {
			return f.truncateAnchor(ctx, t, home, size)
		}
		return nil
	}
	if err := f.truncateSlots(ctx, t, size); err != nil {
		return err
	}
	if size == 0 {
		return nil
	}
	// Anchor the global size on the owner of the final byte — under
	// both epochs while migrating, so either view reports the new size.
	slot, _ := t.readTarget(f.name, size-1)
	if err := f.truncateAnchor(ctx, t, slot, size); err != nil {
		return err
	}
	if t.mig != nil {
		if cur := t.lay.ShardOf(f.name, size-1); cur != slot {
			return f.truncateAnchor(ctx, t, cur, size)
		}
	}
	return nil
}

// truncateReplicated cuts a replicated file: every reachable copy is
// capped, then the owner group of the final byte (both epochs'
// mid-migration) is anchored at exactly size. Unreachable copies are
// journaled as size-suspect so Scrub re-caps them — a shard that was
// down through a truncate must not later reinflate the global size.
func (f *file) truncateReplicated(ctx context.Context, t *topology, size int64) error {
	if err := f.truncateSlots(ctx, t, size); err != nil {
		return err
	}
	if striped(t) && size == 0 {
		return nil
	}
	anchorOff := int64(0)
	if striped(t) && size > 0 {
		anchorOff = size - 1
	}
	slots, fellBack := t.readTargets(f.name, anchorOff)
	if err := f.truncateAnchorGroup(ctx, t, slots, size); err != nil {
		return err
	}
	if fellBack {
		if cur := t.lay.Owners(t.lay.KeyOf(f.name, anchorOff)); !sameSlotSet(cur, slots) {
			return f.truncateAnchorGroup(ctx, t, cur, size)
		}
	}
	return nil
}

// truncateAnchorGroup pins size on every owner in slots. At least one
// anchor must land; owners the cut could not reach are journaled for
// Scrub.
func (f *file) truncateAnchorGroup(ctx context.Context, t *topology, slots []int, size int64) error {
	s := f.store
	ok := 0
	var firstErr error
	for _, sl := range t.dedupSlots(slots) {
		err := f.truncateAnchor(ctx, t, sl, size)
		if err == nil {
			t.health[sl].ok()
			ok++
			continue
		}
		if immediateErr(ctx, err) {
			return err
		}
		s.slotFailed(t, sl)
		s.noteSizeMiss(f.name, sl)
		if firstErr == nil {
			firstErr = err
		}
	}
	if ok == 0 {
		return firstErr
	}
	return nil
}

// truncateSlots caps every store holding more than size. Stores never
// probed are checked by name so stripes written by an earlier handle
// are cut too. Under replication an unreachable store is journaled and
// skipped instead of failing the cut.
func (f *file) truncateSlots(ctx context.Context, t *topology, size int64) error {
	tolerate := func(err error, shard int) bool {
		if !t.replicated() || immediateErr(ctx, err) {
			return false
		}
		f.store.slotFailed(t, shard)
		f.store.noteSizeMiss(f.name, shard)
		return true
	}
	for _, u := range t.uniq {
		if err := backend.CtxErr(ctx); err != nil {
			return err
		}
		local, err := u.store.Stat(f.name)
		if errors.Is(err, backend.ErrNotExist) {
			continue
		}
		if err != nil {
			if tolerate(err, u.shard) {
				continue
			}
			return err
		}
		if local <= size {
			continue
		}
		h, err := f.handle(ctx, t, u.shard, true)
		if err != nil {
			if tolerate(err, u.shard) {
				continue
			}
			return err
		}
		if err := backend.TruncateCtx(ctx, h, size); err != nil {
			if tolerate(err, u.shard) {
				continue
			}
			return err
		}
	}
	return nil
}

// truncateAnchor pins slot's copy at exactly size.
func (f *file) truncateAnchor(ctx context.Context, t *topology, slot int, size int64) error {
	h, err := f.handle(ctx, t, slot, true)
	if err != nil {
		return err
	}
	return backend.TruncateCtx(ctx, h, size)
}

// Sync implements backend.File: every shard handle this file touched
// is flushed.
func (f *file) Sync() error { return f.sync(nil) }

// SyncCtx implements backend.FileCtx, observing ctx between per-shard
// flushes.
func (f *file) SyncCtx(ctx context.Context) error { return f.sync(ctx) }

func (f *file) sync(ctx context.Context) error {
	open, err := f.openHandles()
	if err != nil {
		return err
	}
	t := f.store.topo.Load()
	synced, failed := 0, 0
	var firstErr error
	for s, h := range open {
		if err := backend.CtxErr(ctx); err != nil {
			return err
		}
		if err := backend.SyncCtx(ctx, h); err != nil {
			if t.replicated() && !immediateErr(ctx, err) {
				// A dead shard's flush failing must not fail the sync:
				// every key it holds has a replica among the handles
				// that did flush, and its copies are suspect anyway —
				// Scrub reconverges them from the surviving owners.
				f.store.slotFailed(t, s)
				failed++
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			return err
		}
		t.countSync(s)
		synced++
	}
	if failed > 0 && synced == 0 {
		return firstErr
	}
	return nil
}

func (f *file) checkOpen() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return backend.ErrClosed
	}
	return nil
}

// Close implements backend.File.
func (f *file) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return backend.ErrClosed
	}
	f.closed = true
	files := f.files
	f.files = nil
	f.mu.Unlock()
	var firstErr error
	for _, h := range files {
		if err := h.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// noteFallback counts one dual-ring read served by the previous
// epoch's owner.
func (m *migration) noteFallback() {
	m.fallbackReads.Add(1)
	m.rec.CountEvent(metrics.FallbackRead, 1)
}

// noteMirror counts one write mirrored to the previous epoch's owner.
func (m *migration) noteMirror() {
	m.mirrorWrites.Add(1)
	m.rec.CountEvent(metrics.MirrorWrite, 1)
}
