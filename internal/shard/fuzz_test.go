package shard

import (
	"fmt"
	"testing"
)

// FuzzRingConsistency drives the placement map through arbitrary ring
// shapes and asserts the properties the sharding layer is built on:
//
//  1. Determinism: the same (shards, vnodes) always yields the same
//     placement for every key.
//  2. Growth locality: adding a shard moves keys only ONTO the new
//     shard — never between two surviving shards.
//  3. Shrink locality: removing the last shard moves only the keys
//     that lived on it.
//  4. The consistent-hashing bound: with enough virtual nodes the
//     number of keys a single ring change moves stays within a small
//     factor of the fair share K/N.
func FuzzRingConsistency(f *testing.F) {
	f.Add(uint8(3), uint8(64), uint16(512), int64(1))
	f.Add(uint8(1), uint8(1), uint16(64), int64(7))
	f.Add(uint8(8), uint8(16), uint16(1024), int64(42))
	f.Add(uint8(12), uint8(128), uint16(2048), int64(-9))
	f.Fuzz(func(t *testing.T, nShards, nVnodes uint8, nKeys uint16, seed int64) {
		shards := int(nShards%12) + 1
		vnodes := int(nVnodes%128) + 1
		keys := int(nKeys%2048) + 64

		ring, err := NewRing(shards, vnodes)
		if err != nil {
			t.Fatal(err)
		}
		again, err := NewRing(shards, vnodes)
		if err != nil {
			t.Fatal(err)
		}
		grown, err := NewRing(shards+1, vnodes)
		if err != nil {
			t.Fatal(err)
		}

		perShard := make([]int, shards+1)
		movedUp := 0
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("key-%d-%d", seed, i)
			own := ring.Lookup(k)
			if own < 0 || own >= shards {
				t.Fatalf("Lookup(%q) = %d out of range [0,%d)", k, own, shards)
			}
			if o2 := again.Lookup(k); o2 != own {
				t.Fatalf("determinism violated: %q -> %d then %d", k, own, o2)
			}
			perShard[own]++

			g := grown.Lookup(k)
			if g != own {
				movedUp++
				if g != shards {
					t.Fatalf("growth moved %q between surviving shards: %d -> %d (new shard is %d)",
						k, own, g, shards)
				}
			}
		}

		// Shrink locality, seen from the grown ring's perspective:
		// removing shard `shards` must give back exactly the original
		// placement, so the only keys that move are the new shard's.
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("key-%d-%d", seed, i)
			if grown.Lookup(k) != shards && grown.Lookup(k) != ring.Lookup(k) {
				t.Fatalf("shrink would move %q between surviving shards", k)
			}
		}

		// Quantitative bound, only where the law of large numbers has
		// a chance: enough vnodes to smooth the ring and enough keys
		// to sample it.
		if vnodes >= 16 && keys >= 512 {
			fair := keys / (shards + 1)
			if movedUp > fair*3 {
				t.Fatalf("ring change moved %d of %d keys; consistent-hashing bound is ~%d (3x allowed)",
					movedUp, keys, fair)
			}
		}
	})
}
