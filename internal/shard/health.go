package shard

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Per-slot health tracking for replicated stores: a consecutive-failure
// threshold opens a breaker that routes traffic away from a suspect
// shard, and periodic half-open probes discover recovery. Health state
// is advisory — a slot is always attempted when it is the last hope
// for a read or the only remaining member of a write group — so the
// breaker can never turn a degraded deployment into a failed one.

const (
	// breakerThreshold is the number of CONSECUTIVE failures that
	// opens a slot's breaker. One flaky call must not exile a shard;
	// three in a row with no success in between is an outage signal.
	breakerThreshold = 3
	// breakerProbeEvery paces half-open probes: every Nth operation
	// that would have skipped an open breaker attempts the slot
	// instead, so a recovered shard closes its breaker within a bounded
	// number of requests and no clock is needed.
	breakerProbeEvery = 16
)

// slotHealth is one slot's breaker state. Pointers are shared across
// topology transitions (like the I/O counters), so health survives
// migrations.
type slotHealth struct {
	consec atomic.Int32 // consecutive failures since the last success
	open   atomic.Bool
	tick   atomic.Uint64 // half-open probe pacing counter
	fails  atomic.Int64
	oks    atomic.Int64
}

// allowed reports whether the slot should be attempted now: always
// while the breaker is closed, every breakerProbeEvery-th call while
// open (the half-open probe).
func (h *slotHealth) allowed() bool {
	if !h.open.Load() {
		return true
	}
	return h.tick.Add(1)%breakerProbeEvery == 0
}

// ok records a successful operation: the failure streak resets and an
// open breaker closes (a half-open probe succeeded).
func (h *slotHealth) ok() {
	h.oks.Add(1)
	h.consec.Store(0)
	h.open.Store(false)
}

// fail records a failed operation; opened reports the closed→open
// transition (so the caller counts the BreakerOpen event exactly once
// per outage).
func (h *slotHealth) fail() (opened bool) {
	h.fails.Add(1)
	if h.consec.Add(1) >= breakerThreshold {
		opened = h.open.CompareAndSwap(false, true)
	}
	return opened
}

// ShardHealth is a snapshot of one shard slot's failover health.
type ShardHealth struct {
	// Shard is the slot index in the store list.
	Shard int
	// Failures / Successes count health-relevant outcomes of
	// operations routed to the slot (context cancellations and plain
	// ErrNotExist probes are neither).
	Failures, Successes int64
	// ConsecutiveFailures is the current failure streak; it resets on
	// any success.
	ConsecutiveFailures int
	// BreakerOpen reports whether the slot is currently exiled to
	// half-open probing.
	BreakerOpen bool
}

// Health returns a snapshot of every shard slot's failover health.
// All-zero entries are the steady state of a healthy deployment (the
// tracker only runs under replication).
func (s *Store) Health() []ShardHealth {
	t := s.topo.Load()
	out := make([]ShardHealth, len(t.health))
	for i, h := range t.health {
		out[i] = ShardHealth{
			Shard:               i,
			Failures:            h.fails.Load(),
			Successes:           h.oks.Load(),
			ConsecutiveFailures: int(h.consec.Load()),
			BreakerOpen:         h.open.Load(),
		}
	}
	return out
}

// slotFailed records a health-relevant failure on a slot and counts
// the breaker transition if this failure opened it.
func (s *Store) slotFailed(t *topology, slot int) {
	if t.health[slot].fail() {
		s.noteBreakerOpen()
	}
}

// damageCap bounds the journal; a journal past the cap flips the
// overflow flag instead of growing without bound, and the scrubber
// falls back to a full compare (the journal is a repair hint and a
// tie-breaker, never the only path to convergence for write misses).
const damageCap = 1 << 16

// damageJournal records, in memory, the replica copies an operation
// could not reach: write misses by placement key, truncate-size and
// remove misses by file name. The scrubber consults it to pick verified
// sources and to resolve directions (a missed remove must not
// resurrect) and clears entries as it repairs. The journal dies with
// the process — after a crash the scrubber still converges on
// presence/primary-wins semantics, minus the remove/truncate
// tie-breakers.
type damageJournal struct {
	mu sync.Mutex
	// keys maps placement key → slots that missed a write of that key.
	keys map[string]map[int]bool
	// sizes maps name → slots whose copy may exceed the true size
	// (missed truncate).
	sizes map[string]map[int]bool
	// removes maps name → slots whose copy survived a remove.
	removes map[string]map[int]bool
	// overflow is set once any map hits damageCap; entries stop
	// accumulating and the scrubber treats every copy as suspect.
	overflow bool
	entries  int
}

func (j *damageJournal) note(m *map[string]map[int]bool, k string, slot int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.entries >= damageCap {
		j.overflow = true
		return
	}
	if *m == nil {
		*m = make(map[string]map[int]bool)
	}
	set := (*m)[k]
	if set == nil {
		set = make(map[int]bool, 1)
		(*m)[k] = set
	}
	if !set[slot] {
		set[slot] = true
		j.entries++
	}
}

func (j *damageJournal) get(m map[string]map[int]bool, k string) map[int]bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	set := m[k]
	if set == nil {
		return nil
	}
	out := make(map[int]bool, len(set))
	for s := range set {
		out[s] = true
	}
	return out
}

func (j *damageJournal) clear(m map[string]map[int]bool, k string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if set, ok := m[k]; ok {
		j.entries -= len(set)
		delete(m, k)
	}
}

// suspectAll reports whether the journal overflowed: entries were
// dropped, so the scrubber must treat every copy as suspect instead of
// trusting the journal's source hints.
func (j *damageJournal) suspectAll() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.overflow
}

// resetOverflow clears the overflow flag after a fully clean scrub
// pass: everything present was byte-compared, so the dropped entries
// no longer describe live damage.
func (j *damageJournal) resetOverflow() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.overflow = false
}

// clearName drops every journal entry derived from name — its remove
// and size entries (exact) and its per-key write entries (the name
// itself or any stripe key under it). Called when the scrubber has
// settled the whole file's fate. Stripe keys are name + "\x00" +
// stripe, so for pathological names that themselves contain a NUL this
// can also drop a sibling's hint — losing a hint is safe (the scrubber
// full-compares regardless).
func (j *damageJournal) clearName(name string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, m := range []map[string]map[int]bool{j.sizes, j.removes} {
		if set, ok := m[name]; ok {
			j.entries -= len(set)
			delete(m, name)
		}
	}
	prefix := name + "\x00"
	for k, set := range j.keys {
		if k == name || strings.HasPrefix(k, prefix) {
			j.entries -= len(set)
			delete(j.keys, k)
		}
	}
}

// staleNames returns candidate file names the journal references that
// are NOT in present (the namespace a scrub pass just walked): copies
// stranded on shards nothing vouches for anymore. Placement keys yield
// both the key and its pre-NUL prefix as candidates; scrubbing a name
// that never existed is a no-op.
func (j *damageJournal) staleNames(present map[string]bool) []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	add := func(n string) {
		if !present[n] && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for k := range j.keys {
		add(k)
		if name, _, ok := strings.Cut(k, "\x00"); ok {
			add(name)
		}
	}
	for k := range j.sizes {
		add(k)
	}
	for k := range j.removes {
		add(k)
	}
	sort.Strings(out)
	return out
}

// noteWriteMiss journals a write of key that did not reach slot.
func (s *Store) noteWriteMiss(key string, slot int) { s.damage.note(&s.damage.keys, key, slot) }

// noteSizeMiss journals a truncate of name that did not reach slot.
func (s *Store) noteSizeMiss(name string, slot int) { s.damage.note(&s.damage.sizes, name, slot) }

// noteRemoveMiss journals a remove of name that did not reach slot.
func (s *Store) noteRemoveMiss(name string, slot int) { s.damage.note(&s.damage.removes, name, slot) }
