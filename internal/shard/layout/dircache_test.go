package layout

import (
	"context"
	"sync"
	"testing"

	"lamassu/internal/backend"
)

// volatileDirStore models the directory-cache semantics of a POSIX
// filesystem: file DATA made durable by File.Sync survives a crash,
// but namespace entries — the rename that commits WriteRecord's
// staging file most importantly — sit in a volatile directory cache
// until the parent directory is fsynced. With durableRename unset it
// reproduces the pre-fix OSStore (rename returns with the entry still
// volatile); with it set it models the fixed store, whose Rename
// fsyncs the directory before returning.
type volatileDirStore struct {
	backend.Store
	durableRename bool

	mu      sync.Mutex
	pending []pendingRename
}

type pendingRename struct {
	oldName, newName string
	oldData, newData []byte // pre-rename content, nil = absent
}

func snapshot(s backend.Store, name string) []byte {
	data, err := backend.ReadFile(s, name)
	if err != nil {
		return nil
	}
	return data
}

func (s *volatileDirStore) Rename(oldName, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pre := pendingRename{
		oldName: oldName,
		newName: newName,
		oldData: snapshot(s.Store, oldName),
		newData: snapshot(s.Store, newName),
	}
	if err := s.Store.Rename(oldName, newName); err != nil {
		return err
	}
	if !s.durableRename {
		s.pending = append(s.pending, pre)
	}
	return nil
}

// DropCache simulates power loss before any directory fsync: every
// rename still sitting in the volatile cache is rolled back to its
// pre-rename namespace state.
func (s *volatileDirStore) DropCache(t *testing.T) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.pending) - 1; i >= 0; i-- {
		p := s.pending[i]
		restore := func(name string, data []byte) {
			if data == nil {
				if err := s.Store.Remove(name); err != nil {
					t.Fatalf("rollback remove %q: %v", name, err)
				}
				return
			}
			if err := backend.WriteFile(s.Store, name, data); err != nil {
				t.Fatalf("rollback write %q: %v", name, err)
			}
		}
		restore(p.newName, p.newData)
		restore(p.oldName, p.oldData)
	}
	s.pending = nil
}

// TestRecordSurvivesDirCacheDrop is the durability sweep for the
// staging-rename commit: after WriteRecord returns, a crash that
// drops the (un-fsynced) directory cache must NOT lose the record.
// The pre-fix OSStore semantics (rename without a parent fsync)
// demonstrably lose it; the fixed semantics keep it.
func TestRecordSurvivesDirCacheDrop(t *testing.T) {
	v1 := Record{Epoch: 1, State: StateStable, Shards: 2, Vnodes: 64, StripeBytes: 512}
	v2 := Record{Epoch: 2, State: StateStable, Shards: 2, Vnodes: 64, StripeBytes: 512}

	t.Run("volatile rename loses the commit", func(t *testing.T) {
		st := &volatileDirStore{Store: backend.NewMemStore()}
		st.durableRename = true
		if err := WriteRecord(nil, st, v1); err != nil { // durable baseline
			t.Fatal(err)
		}
		st.durableRename = false
		if err := WriteRecord(nil, st, v2); err != nil {
			t.Fatal(err)
		}
		st.DropCache(t)
		got, ok, err := ReadRecord(nil, st)
		if err != nil || !ok {
			t.Fatalf("ReadRecord after drop: ok=%v err=%v", ok, err)
		}
		if got == v2 {
			t.Fatal("volatile-rename store kept the epoch-2 record; the model no longer reproduces the pre-fix bug")
		}
		if got != v1 {
			t.Fatalf("record after drop = %+v, want rollback to %+v", got, v1)
		}
	})

	t.Run("durable rename keeps the commit", func(t *testing.T) {
		st := &volatileDirStore{Store: backend.NewMemStore(), durableRename: true}
		if err := WriteRecord(nil, st, v1); err != nil {
			t.Fatal(err)
		}
		if err := WriteRecord(nil, st, v2); err != nil {
			t.Fatal(err)
		}
		st.DropCache(t)
		got, ok, err := ReadRecord(nil, st)
		if err != nil || !ok {
			t.Fatalf("ReadRecord after drop: ok=%v err=%v", ok, err)
		}
		if got != v2 {
			t.Fatalf("record after drop = %+v, want the committed %+v", got, v2)
		}
	})
}

// TestWriteRecordFsyncsDirOnOSStore ties the model to the real
// implementation: WriteRecord over a default OSStore must issue
// directory fsyncs (the staging create and the commit rename), and
// the record must read back.
func TestWriteRecordFsyncsDirOnOSStore(t *testing.T) {
	st, err := backend.NewOSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Epoch: 7, State: StateStable, Shards: 4, Vnodes: 64, StripeBytes: 1024}
	if err := WriteRecord(context.Background(), st, rec); err != nil {
		t.Fatal(err)
	}
	if got := st.DirSyncs(); got < 2 {
		t.Fatalf("WriteRecord issued %d dir fsyncs, want >= 2 (staging create + commit rename)", got)
	}
	got, ok, err := ReadRecord(context.Background(), st)
	if err != nil || !ok || got != rec {
		t.Fatalf("ReadRecord = %+v, %v, %v", got, ok, err)
	}
}
