// Package layout is the placement subsystem of the shard layer: ring
// construction, key→shard routing and the epoch versioning that makes
// topology change an online operation.
//
// A Layout is one immutable placement epoch: a consistent-hash Ring
// over N shards plus the stripe unit, stamped with a monotonically
// increasing epoch number. The ring's hash construction is on-disk
// format (TestRingGoldenPlacement in internal/shard pins it): the
// epoch versions WHICH ring a deployment routes by, never how a given
// ring hashes. A migrating mount holds two Layouts — the previous and
// the current epoch — and routes reads through both (dual-ring reads)
// until the mover confirms every relocated key; see internal/shard's
// migration machinery.
//
// The current epoch is persisted on the shards themselves as a small
// golden-pinned Record (record.go), so a reopened mount can discover
// the deployment's epoch — and an interrupted migration — without any
// out-of-band state.
package layout

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per shard. 64 points per
// shard keeps the ring small (a few KiB even at 32 shards) while
// holding the load imbalance across shards to roughly ±25 % of fair
// share (measured at 8 shards); provision hot-shard capacity with
// that margin, or raise the vnode count to tighten it.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash placement map: Shards() shards,
// each contributing Vnodes() points on a 64-bit circle. Construction
// is deterministic — two rings built with the same (shards, vnodes)
// anywhere, in any process, place every key identically.
type Ring struct {
	shards int
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the placement map for the given shard and
// virtual-node counts. vnodes < 1 selects DefaultVnodes.
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, errors.New("shard: ring needs at least one shard")
	}
	if vnodes < 1 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		shards: shards,
		vnodes: vnodes,
		points: make([]ringPoint, 0, shards*vnodes),
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := hashKey(fmt.Sprintf("shard-%d-vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Colliding points order by shard so ties break identically
		// everywhere.
		return a.shard < b.shard
	})
	return r, nil
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Vnodes returns the virtual-node count per shard.
func (r *Ring) Vnodes() int { return r.vnodes }

// Lookup returns the shard owning key: the shard of the first ring
// point at or clockwise of the key's hash.
func (r *Ring) Lookup(key string) int {
	if r.shards == 1 {
		return 0
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard
}

// LookupN returns the first n DISTINCT shards at or clockwise of the
// key's hash — the replica set of the key. LookupN(key, 1)[0] always
// equals Lookup(key), so single-copy placement is the R=1 special
// case of the same walk, and raising R never moves a key's primary.
// n is clamped to the shard count (a ring cannot hold more distinct
// copies than it has shards).
func (r *Ring) LookupN(key string, n int) []int {
	if n > r.shards {
		n = r.shards
	}
	if n < 1 {
		n = 1
	}
	if r.shards == 1 {
		return []int{0}
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	owners := make([]int, 0, n)
	seen := make([]bool, r.shards)
	for scanned := 0; scanned < len(r.points) && len(owners) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			owners = append(owners, p.shard)
		}
	}
	return owners
}

// hashKey maps a key onto the circle: FNV-1a for stable, seedless
// absorption (placement must agree between the process that wrote a
// file and every later process that reads it) followed by a
// splitmix64 finalizer — raw FNV of near-identical keys ("shard-0-
// vnode-1", "shard-0-vnode-2", …) clusters badly on the circle, and
// the finalizer's avalanche spreads the points to the ~±25 % load
// imbalance of an ideal ring at the default vnode count.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (public-domain constants).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Layout is one placement epoch: an immutable ring plus the stripe
// unit, stamped with the epoch number. Two Layouts with the same
// (shards, vnodes, stripe) place every key identically regardless of
// epoch — the epoch orders topologies in time, it never perturbs the
// hash.
type Layout struct {
	epoch    uint64
	ring     *Ring
	stripe   int64
	replicas int // distinct copies per key; 0 and 1 both mean single-copy
}

// New builds the Layout for one epoch. vnodes < 1 selects
// DefaultVnodes; stripe <= 0 selects whole-file placement. The layout
// places a single copy of every key; derive a replicated layout with
// WithReplicas.
func New(epoch uint64, shards, vnodes int, stripe int64) (*Layout, error) {
	ring, err := NewRing(shards, vnodes)
	if err != nil {
		return nil, err
	}
	if stripe < 0 {
		stripe = 0
	}
	return &Layout{epoch: epoch, ring: ring, stripe: stripe}, nil
}

// Epoch returns the layout's epoch number.
func (l *Layout) Epoch() uint64 { return l.epoch }

// Shards returns the number of shards.
func (l *Layout) Shards() int { return l.ring.shards }

// Vnodes returns the virtual-node count per shard.
func (l *Layout) Vnodes() int { return l.ring.vnodes }

// StripeBytes returns the stripe unit (0 = whole-file placement).
func (l *Layout) StripeBytes() int64 { return l.stripe }

// Ring returns the underlying placement ring.
func (l *Layout) Ring() *Ring { return l.ring }

// WithEpoch returns a Layout identical to l but stamped with epoch —
// the cheap path for adopting a persisted epoch number at mount time
// (the ring is shared, not rebuilt).
func (l *Layout) WithEpoch(epoch uint64) *Layout {
	if epoch == l.epoch {
		return l
	}
	return &Layout{epoch: epoch, ring: l.ring, stripe: l.stripe, replicas: l.replicas}
}

// WithReplicas returns a Layout identical to l but placing r distinct
// copies of every key (the ring is shared, not rebuilt). r is clamped
// to [1, shards]; WithReplicas(1) is single-copy placement.
func (l *Layout) WithReplicas(r int) *Layout {
	if r > l.ring.shards {
		r = l.ring.shards
	}
	if r < 1 {
		r = 1
	}
	if r == l.Replicas() {
		return l
	}
	return &Layout{epoch: l.epoch, ring: l.ring, stripe: l.stripe, replicas: r}
}

// Replicas returns the number of distinct copies the layout places
// per key; always at least 1.
func (l *Layout) Replicas() int {
	if l.replicas < 1 {
		return 1
	}
	return l.replicas
}

// KeyOf returns the placement key of byte off of the named file: the
// name itself under whole-file placement, the derived stripe key
// otherwise. Two layouts over the same stripe unit derive identical
// keys, which is what lets a migration compare owners key by key.
func (l *Layout) KeyOf(name string, off int64) string {
	if l.stripe <= 0 {
		return name
	}
	return StripeKey(name, off/l.stripe)
}

// ShardOf returns the shard owning byte off of the named file. It is
// pure ring arithmetic — no I/O, O(log vnodes) — so callers may use it
// on their hot paths to route work before touching data.
func (l *Layout) ShardOf(name string, off int64) int {
	return l.ring.Lookup(l.KeyOf(name, off))
}

// Owner returns the shard owning a placement key previously derived
// with KeyOf (or StripeKey). Under replication it is the PRIMARY —
// Owners(key)[0] — so single-copy callers need never know about
// replica sets.
func (l *Layout) Owner(key string) int { return l.ring.Lookup(key) }

// Owners returns the replica set of a placement key: the layout's R
// distinct shards walking clockwise from the key's hash, primary
// first. Owners(key)[0] == Owner(key) for every layout, so the R=1
// placement (and its golden) is unchanged by replication.
func (l *Layout) Owners(key string) []int {
	return l.ring.LookupN(key, l.Replicas())
}

// SamePlacement reports whether l and o route every key identically
// (same shard count, vnodes, stripe unit and replication factor) —
// epochs are ignored.
func (l *Layout) SamePlacement(o *Layout) bool {
	return l.ring.shards == o.ring.shards && l.ring.vnodes == o.ring.vnodes &&
		l.stripe == o.stripe && l.Replicas() == o.Replicas()
}

// StripeKey derives the placement key of stripe idx of name. The NUL
// separator cannot occur in OS file names, so derived keys never
// collide with whole-file keys of other files.
func StripeKey(name string, idx int64) string {
	return name + "\x00" + strconv.FormatInt(idx, 10)
}
