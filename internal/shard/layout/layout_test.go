package layout

import (
	"bytes"
	"fmt"
	"testing"

	"lamassu/internal/backend"
)

// The record encoding is on-disk format shared by every process that
// opens a deployment; the goldens pin it byte for byte. A failure
// here means existing deployments stop recognizing their own epoch —
// it needs a format-versioning story, not a golden update.
func TestRecordGolden(t *testing.T) {
	cases := []struct {
		rec  Record
		want string
	}{
		{
			rec: Record{Epoch: 0, State: StateStable, Shards: 3, Vnodes: 64, StripeBytes: 4325376},
			want: "lamassu-layout v1\n" +
				"epoch 0\n" +
				"state stable\n" +
				"shards 3\n" +
				"vnodes 64\n" +
				"stripe 4325376\n",
		},
		{
			rec: Record{Epoch: 7, State: StateMigrating, Shards: 4, Vnodes: 64, StripeBytes: 0,
				PrevShards: 3, PrevVnodes: 64},
			want: "lamassu-layout v1\n" +
				"epoch 7\n" +
				"state migrating\n" +
				"shards 4\n" +
				"vnodes 64\n" +
				"stripe 0\n" +
				"prev-shards 3\n" +
				"prev-vnodes 64\n",
		},
		{
			rec: Record{Epoch: 2, State: StateReaping, Shards: 2, Vnodes: 32, StripeBytes: 8192,
				PrevShards: 5, PrevVnodes: 32},
			want: "lamassu-layout v1\n" +
				"epoch 2\n" +
				"state reaping\n" +
				"shards 2\n" +
				"vnodes 32\n" +
				"stripe 8192\n" +
				"prev-shards 5\n" +
				"prev-vnodes 32\n",
		},
	}
	for i, c := range cases {
		got := c.rec.Encode()
		if !bytes.Equal(got, []byte(c.want)) {
			t.Errorf("case %d: Encode mismatch:\ngot:\n%swant:\n%s", i, got, c.want)
		}
		back, err := DecodeRecord(got)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if back != c.rec {
			t.Errorf("case %d: round trip %+v -> %+v", i, c.rec, back)
		}
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	bad := []string{
		"",
		"not-a-record\n",
		"lamassu-layout v2\nepoch 0\nstate stable\nshards 1\nvnodes 64\nstripe 0\n",
		"lamassu-layout v1\nepoch 0\nstate stable\nvnodes 64\nstripe 0\n",                           // missing shards
		"lamassu-layout v1\nepoch 0\nstate wat\nshards 1\nvnodes 64\nstripe 0\n",                    // bad state
		"lamassu-layout v1\nepoch 0\nstate migrating\nshards 2\nvnodes 64\nstripe 0\n",              // migrating without prev
		"lamassu-layout v1\nepoch 0\nstate stable\nshards 1\nshards 1\nvnodes 64\nstripe 0\n",       // dup field
		"lamassu-layout v1\nepoch 0\nstate stable\nshards 1\nvnodes 64\nstripe 0\nfuture-field 1\n", // unknown field
	}
	for i, s := range bad {
		if _, err := DecodeRecord([]byte(s)); err == nil {
			t.Errorf("case %d: decode of %q succeeded", i, s)
		}
	}
}

// The resolver ordering after a crash mid-record-fanout:
// stable(E) < migrating(E+1) < reaping(E+1) < stable(E+1) < migrating(E+2).
func TestRecordNewerOrdering(t *testing.T) {
	seq := []Record{
		{Epoch: 1, State: StateStable, Shards: 2},
		{Epoch: 2, State: StateMigrating, Shards: 3, PrevShards: 2},
		{Epoch: 2, State: StateReaping, Shards: 3, PrevShards: 2},
		{Epoch: 2, State: StateStable, Shards: 3},
		{Epoch: 3, State: StateMigrating, Shards: 4, PrevShards: 3},
	}
	for i := range seq {
		for j := range seq {
			got := seq[j].Newer(seq[i])
			if want := j > i; got != want {
				t.Errorf("Newer(%d over %d) = %v, want %v", j, i, got, want)
			}
		}
	}
}

// A Layout routes exactly like its ring (the epoch never perturbs the
// hash), and stripe keys derive identically.
func TestLayoutRoutesLikeRing(t *testing.T) {
	ring, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, epoch := range []uint64{0, 1, 42} {
		lay, err := New(epoch, 5, 64, 8192)
		if err != nil {
			t.Fatal(err)
		}
		if lay.Epoch() != epoch {
			t.Fatalf("Epoch = %d, want %d", lay.Epoch(), epoch)
		}
		for i := 0; i < 512; i++ {
			name := fmt.Sprintf("file-%03d", i)
			off := int64(i) * 4096
			key := StripeKey(name, off/8192)
			if got, want := lay.ShardOf(name, off), ring.Lookup(key); got != want {
				t.Fatalf("epoch %d: ShardOf(%q, %d) = %d, ring says %d", epoch, name, off, got, want)
			}
			if got, want := lay.Owner(key), ring.Lookup(key); got != want {
				t.Fatalf("Owner(%q) = %d, ring says %d", key, got, want)
			}
		}
	}
	// Whole-file placement keys are the names themselves.
	lay, err := New(0, 5, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lay.KeyOf("abc", 1<<30) != "abc" {
		t.Fatalf("whole-file KeyOf = %q", lay.KeyOf("abc", 1<<30))
	}
	if lay.ShardOf("abc", 1<<30) != ring.Lookup("abc") {
		t.Fatal("whole-file ShardOf diverges from ring")
	}
}

func TestLayoutWithEpoch(t *testing.T) {
	lay, err := New(0, 3, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	bumped := lay.WithEpoch(9)
	if bumped.Epoch() != 9 || bumped.Ring() != lay.Ring() {
		t.Fatalf("WithEpoch: epoch %d, ring shared %v", bumped.Epoch(), bumped.Ring() == lay.Ring())
	}
	if lay.WithEpoch(0) != lay {
		t.Fatal("WithEpoch(same) should return the receiver")
	}
	if !lay.SamePlacement(bumped) {
		t.Fatal("SamePlacement must ignore epochs")
	}
	other, _ := New(0, 4, 64, 0)
	if lay.SamePlacement(other) {
		t.Fatal("SamePlacement across shard counts")
	}
}

// Records round-trip through a backend store, and RemoveRecord /
// a missing record are clean.
func TestRecordStoreRoundTrip(t *testing.T) {
	st := backend.NewMemStore()
	if _, ok, err := ReadRecord(nil, st); err != nil || ok {
		t.Fatalf("fresh store: ok=%v err=%v", ok, err)
	}
	rec := Record{Epoch: 3, State: StateStable, Shards: 2, Vnodes: 64, StripeBytes: 512}
	if err := WriteRecord(nil, st, rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadRecord(nil, st)
	if err != nil || !ok || got != rec {
		t.Fatalf("ReadRecord = %+v, %v, %v", got, ok, err)
	}
	if err := RemoveRecord(nil, st); err != nil {
		t.Fatal(err)
	}
	if err := RemoveRecord(nil, st); err != nil {
		t.Fatalf("double RemoveRecord: %v", err)
	}
	if _, ok, _ := ReadRecord(nil, st); ok {
		t.Fatal("record survived RemoveRecord")
	}
}
