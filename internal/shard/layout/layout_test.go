package layout

import (
	"bytes"
	"fmt"
	"testing"

	"lamassu/internal/backend"
)

// The record encoding is on-disk format shared by every process that
// opens a deployment; the goldens pin it byte for byte. A failure
// here means existing deployments stop recognizing their own epoch —
// it needs a format-versioning story, not a golden update.
func TestRecordGolden(t *testing.T) {
	cases := []struct {
		rec  Record
		want string
	}{
		{
			rec: Record{Epoch: 0, State: StateStable, Shards: 3, Vnodes: 64, StripeBytes: 4325376},
			want: "lamassu-layout v1\n" +
				"epoch 0\n" +
				"state stable\n" +
				"shards 3\n" +
				"vnodes 64\n" +
				"stripe 4325376\n",
		},
		{
			rec: Record{Epoch: 7, State: StateMigrating, Shards: 4, Vnodes: 64, StripeBytes: 0,
				PrevShards: 3, PrevVnodes: 64},
			want: "lamassu-layout v1\n" +
				"epoch 7\n" +
				"state migrating\n" +
				"shards 4\n" +
				"vnodes 64\n" +
				"stripe 0\n" +
				"prev-shards 3\n" +
				"prev-vnodes 64\n",
		},
		{
			rec: Record{Epoch: 2, State: StateReaping, Shards: 2, Vnodes: 32, StripeBytes: 8192,
				PrevShards: 5, PrevVnodes: 32},
			want: "lamassu-layout v1\n" +
				"epoch 2\n" +
				"state reaping\n" +
				"shards 2\n" +
				"vnodes 32\n" +
				"stripe 8192\n" +
				"prev-shards 5\n" +
				"prev-vnodes 32\n",
		},
		// Replicated records encode as v2; the replicas field sits
		// between stripe and the prev-* block.
		{
			rec: Record{Epoch: 1, State: StateStable, Shards: 4, Vnodes: 64, StripeBytes: 8192,
				Replicas: 2},
			want: "lamassu-layout v2\n" +
				"epoch 1\n" +
				"state stable\n" +
				"shards 4\n" +
				"vnodes 64\n" +
				"stripe 8192\n" +
				"replicas 2\n",
		},
		{
			rec: Record{Epoch: 3, State: StateMigrating, Shards: 5, Vnodes: 64, StripeBytes: 0,
				PrevShards: 4, PrevVnodes: 64, Replicas: 3},
			want: "lamassu-layout v2\n" +
				"epoch 3\n" +
				"state migrating\n" +
				"shards 5\n" +
				"vnodes 64\n" +
				"stripe 0\n" +
				"replicas 3\n" +
				"prev-shards 4\n" +
				"prev-vnodes 64\n",
		},
	}
	for i, c := range cases {
		got := c.rec.Encode()
		if !bytes.Equal(got, []byte(c.want)) {
			t.Errorf("case %d: Encode mismatch:\ngot:\n%swant:\n%s", i, got, c.want)
		}
		back, err := DecodeRecord(got)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if back != c.rec {
			t.Errorf("case %d: round trip %+v -> %+v", i, c.rec, back)
		}
	}
	// v1 decodes must leave Replicas at the zero value so existing
	// deployments adopt as single-copy (ReplicaCount normalizes).
	v1, err := DecodeRecord(cases[0].rec.Encode())
	if err != nil || v1.Replicas != 0 || v1.ReplicaCount() != 1 {
		t.Fatalf("v1 decode: Replicas=%d ReplicaCount=%d err=%v", v1.Replicas, v1.ReplicaCount(), err)
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	bad := []string{
		"",
		"not-a-record\n",
		"lamassu-layout v2\nepoch 0\nstate stable\nshards 1\nvnodes 64\nstripe 0\n",                 // v2 without replicas
		"lamassu-layout v2\nepoch 0\nstate stable\nshards 2\nvnodes 64\nstripe 0\nreplicas 1\n",     // v2 with single-copy factor
		"lamassu-layout v1\nepoch 0\nstate stable\nshards 2\nvnodes 64\nstripe 0\nreplicas 2\n",     // replicas is not a v1 field
		"lamassu-layout v3\nepoch 0\nstate stable\nshards 1\nvnodes 64\nstripe 0\n",                 // unknown version
		"lamassu-layout v1\nepoch 0\nstate stable\nvnodes 64\nstripe 0\n",                           // missing shards
		"lamassu-layout v1\nepoch 0\nstate wat\nshards 1\nvnodes 64\nstripe 0\n",                    // bad state
		"lamassu-layout v1\nepoch 0\nstate migrating\nshards 2\nvnodes 64\nstripe 0\n",              // migrating without prev
		"lamassu-layout v1\nepoch 0\nstate stable\nshards 1\nshards 1\nvnodes 64\nstripe 0\n",       // dup field
		"lamassu-layout v1\nepoch 0\nstate stable\nshards 1\nvnodes 64\nstripe 0\nfuture-field 1\n", // unknown field
	}
	for i, s := range bad {
		if _, err := DecodeRecord([]byte(s)); err == nil {
			t.Errorf("case %d: decode of %q succeeded", i, s)
		}
	}
}

// The resolver ordering after a crash mid-record-fanout:
// stable(E) < migrating(E+1) < reaping(E+1) < stable(E+1) < migrating(E+2).
func TestRecordNewerOrdering(t *testing.T) {
	seq := []Record{
		{Epoch: 1, State: StateStable, Shards: 2},
		{Epoch: 2, State: StateMigrating, Shards: 3, PrevShards: 2},
		{Epoch: 2, State: StateReaping, Shards: 3, PrevShards: 2},
		{Epoch: 2, State: StateStable, Shards: 3},
		{Epoch: 3, State: StateMigrating, Shards: 4, PrevShards: 3},
	}
	for i := range seq {
		for j := range seq {
			got := seq[j].Newer(seq[i])
			if want := j > i; got != want {
				t.Errorf("Newer(%d over %d) = %v, want %v", j, i, got, want)
			}
		}
	}
}

// A Layout routes exactly like its ring (the epoch never perturbs the
// hash), and stripe keys derive identically.
func TestLayoutRoutesLikeRing(t *testing.T) {
	ring, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, epoch := range []uint64{0, 1, 42} {
		lay, err := New(epoch, 5, 64, 8192)
		if err != nil {
			t.Fatal(err)
		}
		if lay.Epoch() != epoch {
			t.Fatalf("Epoch = %d, want %d", lay.Epoch(), epoch)
		}
		for i := 0; i < 512; i++ {
			name := fmt.Sprintf("file-%03d", i)
			off := int64(i) * 4096
			key := StripeKey(name, off/8192)
			if got, want := lay.ShardOf(name, off), ring.Lookup(key); got != want {
				t.Fatalf("epoch %d: ShardOf(%q, %d) = %d, ring says %d", epoch, name, off, got, want)
			}
			if got, want := lay.Owner(key), ring.Lookup(key); got != want {
				t.Fatalf("Owner(%q) = %d, ring says %d", key, got, want)
			}
		}
	}
	// Whole-file placement keys are the names themselves.
	lay, err := New(0, 5, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lay.KeyOf("abc", 1<<30) != "abc" {
		t.Fatalf("whole-file KeyOf = %q", lay.KeyOf("abc", 1<<30))
	}
	if lay.ShardOf("abc", 1<<30) != ring.Lookup("abc") {
		t.Fatal("whole-file ShardOf diverges from ring")
	}
}

// Replica sets: Owners[0] is always the single-copy owner, owners are
// distinct, stable under clamping, and WithReplicas shares the ring.
func TestLayoutOwners(t *testing.T) {
	lay, err := New(0, 5, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2 := lay.WithReplicas(2)
	if r2.Ring() != lay.Ring() {
		t.Fatal("WithReplicas must share the ring")
	}
	if lay.Replicas() != 1 || r2.Replicas() != 2 {
		t.Fatalf("Replicas = %d / %d", lay.Replicas(), r2.Replicas())
	}
	if lay.WithReplicas(1) != lay {
		t.Fatal("WithReplicas(same) should return the receiver")
	}
	if lay.SamePlacement(r2) {
		t.Fatal("SamePlacement must distinguish replication factors")
	}
	for i := 0; i < 512; i++ {
		key := fmt.Sprintf("file-%03d", i)
		owners := r2.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q) = %v, want 2 owners", key, owners)
		}
		if owners[0] != lay.Owner(key) {
			t.Fatalf("Owners(%q)[0] = %d, single-copy owner is %d", key, owners[0], lay.Owner(key))
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%q) = %v, owners must be distinct", key, owners)
		}
	}
	// Clamping: more replicas than shards degrades to all shards, and
	// the full set is a permutation of 0..shards-1.
	all := lay.WithReplicas(99)
	if all.Replicas() != 5 {
		t.Fatalf("WithReplicas(99).Replicas() = %d, want 5", all.Replicas())
	}
	seen := map[int]bool{}
	for _, s := range all.Owners("k") {
		seen[s] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Owners at R=shards covers %d shards, want 5", len(seen))
	}
	// A single-shard ring has exactly one owner no matter the factor.
	one, _ := New(0, 1, 64, 0)
	if got := one.WithReplicas(3).Owners("k"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-shard Owners = %v", got)
	}
}

func TestLayoutWithEpoch(t *testing.T) {
	lay, err := New(0, 3, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	bumped := lay.WithEpoch(9)
	if bumped.Epoch() != 9 || bumped.Ring() != lay.Ring() {
		t.Fatalf("WithEpoch: epoch %d, ring shared %v", bumped.Epoch(), bumped.Ring() == lay.Ring())
	}
	if lay.WithEpoch(0) != lay {
		t.Fatal("WithEpoch(same) should return the receiver")
	}
	if !lay.SamePlacement(bumped) {
		t.Fatal("SamePlacement must ignore epochs")
	}
	other, _ := New(0, 4, 64, 0)
	if lay.SamePlacement(other) {
		t.Fatal("SamePlacement across shard counts")
	}
}

// Records round-trip through a backend store, and RemoveRecord /
// a missing record are clean.
func TestRecordStoreRoundTrip(t *testing.T) {
	st := backend.NewMemStore()
	if _, ok, err := ReadRecord(nil, st); err != nil || ok {
		t.Fatalf("fresh store: ok=%v err=%v", ok, err)
	}
	rec := Record{Epoch: 3, State: StateStable, Shards: 2, Vnodes: 64, StripeBytes: 512}
	if err := WriteRecord(nil, st, rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadRecord(nil, st)
	if err != nil || !ok || got != rec {
		t.Fatalf("ReadRecord = %+v, %v, %v", got, ok, err)
	}
	if err := RemoveRecord(nil, st); err != nil {
		t.Fatal(err)
	}
	if err := RemoveRecord(nil, st); err != nil {
		t.Fatalf("double RemoveRecord: %v", err)
	}
	if _, ok, _ := ReadRecord(nil, st); ok {
		t.Fatal("record survived RemoveRecord")
	}
}
