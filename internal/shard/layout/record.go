package layout

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"lamassu/internal/backend"
)

// RecordName is the backing-store file that holds a deployment's
// layout record. The name — and every name derived from it, like the
// atomic-replace temporary — is reserved: the shard layer hides them
// from List and rejects user opens. (Under encrypted names the record
// is stored — like every other backing file — under its encrypted
// name.)
const RecordName = ".lamassu-layout"

// recordTmpName is the staging file WriteRecord renames over
// RecordName, so a crash mid-update can never leave a torn record.
const recordTmpName = RecordName + ".tmp"

// IsReserved reports whether name belongs to the layout subsystem and
// must stay invisible to (and unwritable by) everything above it.
func IsReserved(name string) bool {
	return name == RecordName || strings.HasPrefix(name, RecordName+".")
}

// State is the phase of the epoch state machine a record captures.
//
//	stable ──StartRebalance──▶ migrating ──copies done──▶ reaping ──stale copies removed──▶ stable
//
// A migrating record carries BOTH placements (current = the epoch
// being served, target parameters in Shards/Vnodes with the previous
// epoch's in PrevShards/PrevVnodes); a reaping record is the new
// epoch with stale-copy removal still pending.
type State int

const (
	// StateStable is a settled deployment: one ring, no migration.
	StateStable State = iota
	// StateMigrating is a deployment mid-rebalance: writes route by
	// the new ring (mirrored to the old owner), reads fall back to the
	// old ring until the mover confirms each key.
	StateMigrating
	// StateReaping is a deployment whose epoch bump committed but whose
	// stale old-owner copies have not all been removed yet.
	StateReaping
)

// String returns the record-encoding token for the state.
func (s State) String() string {
	switch s {
	case StateStable:
		return "stable"
	case StateMigrating:
		return "migrating"
	case StateReaping:
		return "reaping"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// rank orders records written by one deployment over time, for the
// resolver that reads possibly-divergent per-shard copies after a
// crash. A migrating record already carries the TARGET epoch, so the
// full lifecycle sorts as
// stable(E) < migrating(E+1) < reaping(E+1) < stable(E+1).
func (s State) rank() int {
	switch s {
	case StateMigrating:
		return 1
	case StateReaping:
		return 2
	case StateStable:
		return 3
	default:
		return 0
	}
}

// Record is the persisted form of a deployment's placement epoch: the
// parameters every process must agree on (shard count, vnodes, stripe
// unit), the epoch number, and — during a migration — the previous
// epoch's parameters so a reopened mount can rebuild both rings.
//
// The encoding is golden-pinned (TestRecordGolden): it is on-disk
// format, shared by every process that ever opens the deployment.
type Record struct {
	// Epoch is the placement epoch the record describes. While
	// migrating it is the epoch being MIGRATED TO (PrevShards/PrevVnodes
	// describe epoch Epoch-1, which reads still fall back to).
	Epoch uint64
	// State is the deployment's phase.
	State State
	// Shards / Vnodes / StripeBytes are the placement parameters of
	// epoch Epoch.
	Shards      int
	Vnodes      int
	StripeBytes int64
	// PrevShards / PrevVnodes are the previous epoch's parameters; set
	// only while State is StateMigrating or StateReaping.
	PrevShards int
	PrevVnodes int
	// Replicas is the number of distinct copies the deployment places
	// per key. 0 and 1 both mean single-copy. A record with Replicas
	// >= 2 encodes as format v2; single-copy records stay byte-for-byte
	// v1, so replication never perturbs an existing deployment's
	// on-disk record.
	Replicas int
}

// magic is the first line of a single-copy record (format version v1).
// magicV2 heads records that carry a replication factor; a v1 reader
// rejects them outright (bad magic) rather than silently serving an
// R-way deployment with single-copy semantics.
const (
	magic   = "lamassu-layout v1"
	magicV2 = "lamassu-layout v2"
)

// ReplicaCount returns the record's replication factor, normalizing
// the v1 zero value to 1.
func (r Record) ReplicaCount() int {
	if r.Replicas < 1 {
		return 1
	}
	return r.Replicas
}

// Encode renders the record in its canonical, golden-pinned form:
// exactly the v1 bytes when single-copy, v2 (with a replicas field)
// when the deployment places two or more copies per key.
func (r Record) Encode() []byte {
	var b strings.Builder
	if r.Replicas >= 2 {
		fmt.Fprintf(&b, "%s\n", magicV2)
	} else {
		fmt.Fprintf(&b, "%s\n", magic)
	}
	fmt.Fprintf(&b, "epoch %d\n", r.Epoch)
	fmt.Fprintf(&b, "state %s\n", r.State)
	fmt.Fprintf(&b, "shards %d\n", r.Shards)
	fmt.Fprintf(&b, "vnodes %d\n", r.Vnodes)
	fmt.Fprintf(&b, "stripe %d\n", r.StripeBytes)
	if r.Replicas >= 2 {
		fmt.Fprintf(&b, "replicas %d\n", r.Replicas)
	}
	if r.State != StateStable {
		fmt.Fprintf(&b, "prev-shards %d\n", r.PrevShards)
		fmt.Fprintf(&b, "prev-vnodes %d\n", r.PrevVnodes)
	}
	return []byte(b.String())
}

// DecodeRecord parses an encoded record, rejecting unknown versions
// and malformed fields. Both format versions decode: v1 records leave
// Replicas at 0 (single-copy — use ReplicaCount for the normalized
// factor), v2 records must carry replicas >= 2.
func DecodeRecord(data []byte) (Record, error) {
	var r Record
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	v2 := len(lines) > 0 && lines[0] == magicV2
	if len(lines) == 0 || (lines[0] != magic && !v2) {
		return r, fmt.Errorf("shard: layout record: bad magic (want %q or %q)", magic, magicV2)
	}
	seen := make(map[string]bool, len(lines))
	for _, line := range lines[1:] {
		field, val, ok := strings.Cut(line, " ")
		if !ok {
			return r, fmt.Errorf("shard: layout record: malformed line %q", line)
		}
		if seen[field] {
			return r, fmt.Errorf("shard: layout record: duplicate field %q", field)
		}
		seen[field] = true
		var err error
		switch field {
		case "epoch":
			r.Epoch, err = strconv.ParseUint(val, 10, 64)
		case "state":
			switch val {
			case "stable":
				r.State = StateStable
			case "migrating":
				r.State = StateMigrating
			case "reaping":
				r.State = StateReaping
			default:
				err = fmt.Errorf("unknown state %q", val)
			}
		case "shards":
			r.Shards, err = strconv.Atoi(val)
		case "vnodes":
			r.Vnodes, err = strconv.Atoi(val)
		case "stripe":
			r.StripeBytes, err = strconv.ParseInt(val, 10, 64)
		case "replicas":
			if !v2 {
				// v1 never wrote this field; treat it like any other
				// unknown v1 field so a hand-edited hybrid is rejected.
				err = fmt.Errorf("unknown field %q", field)
				break
			}
			r.Replicas, err = strconv.Atoi(val)
		case "prev-shards":
			r.PrevShards, err = strconv.Atoi(val)
		case "prev-vnodes":
			r.PrevVnodes, err = strconv.Atoi(val)
		default:
			// Unknown fields are errors, not skips: a v1 reader must not
			// half-understand a future record and route by the wrong ring.
			err = fmt.Errorf("unknown field %q", field)
		}
		if err != nil {
			return r, fmt.Errorf("shard: layout record: field %q: %w", field, err)
		}
	}
	if r.Shards < 1 {
		return r, errors.New("shard: layout record: missing or invalid shards")
	}
	if r.State != StateStable && r.PrevShards < 1 {
		return r, fmt.Errorf("shard: layout record: state %s without prev-shards", r.State)
	}
	if v2 && r.Replicas < 2 {
		// A v2 record exists only to carry a replication factor; one
		// without it (or with a single-copy factor) is malformed, not a
		// quiet R=1 — Encode would have produced v1.
		return r, errors.New("shard: layout record: v2 record without replicas >= 2")
	}
	return r, nil
}

// Newer reports whether r supersedes o in the epoch state machine.
// After a crash mid-record-fanout different shards may hold records
// from adjacent phases; the most advanced one is authoritative,
// because every phase transition finishes its data work BEFORE
// writing the next record anywhere.
func (r Record) Newer(o Record) bool {
	if r.Epoch != o.Epoch {
		return r.Epoch > o.Epoch
	}
	return r.State.rank() > o.State.rank()
}

// ReadRecord reads and decodes a store's layout record. The second
// return is false (with a nil error) when the store has none — the
// implicit epoch-0 state of every deployment that never rebalanced
// online.
func ReadRecord(ctx context.Context, s backend.Store) (Record, bool, error) {
	f, err := backend.OpenCtx(ctx, s, RecordName, backend.OpenRead)
	if errors.Is(err, backend.ErrNotExist) {
		return Record{}, false, nil
	}
	if err != nil {
		return Record{}, false, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return Record{}, false, err
	}
	buf := make([]byte, size)
	if size > 0 {
		if err := backend.ReadFullCtx(ctx, f, buf, 0); err != nil {
			return Record{}, false, err
		}
	}
	rec, err := DecodeRecord(buf)
	if err != nil {
		return Record{}, false, err
	}
	return rec, true, nil
}

// WriteRecord encodes and durably writes a store's layout record:
// the bytes land in a staging file (truncate + write + sync) that is
// then atomically renamed over the record, so a crash at any point
// leaves either the old record or the new one — never a torn mix the
// reopen path would refuse to decode. A stale staging file from an
// earlier crash is simply overwritten.
func WriteRecord(ctx context.Context, s backend.Store, r Record) error {
	if err := backend.CtxErr(ctx); err != nil {
		return err
	}
	if err := backend.WriteFile(s, recordTmpName, r.Encode()); err != nil {
		return err
	}
	return s.Rename(recordTmpName, RecordName)
}

// RemoveRecord deletes a store's layout record and any staging
// leftover (used when a shard is retired); a store without one is not
// an error.
func RemoveRecord(ctx context.Context, s backend.Store) error {
	if err := backend.RemoveCtx(ctx, s, recordTmpName); err != nil && !errors.Is(err, backend.ErrNotExist) {
		return err
	}
	err := backend.RemoveCtx(ctx, s, RecordName)
	if errors.Is(err, backend.ErrNotExist) {
		return nil
	}
	return err
}
