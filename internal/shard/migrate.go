package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lamassu/internal/backend"
	"lamassu/internal/metrics"
	"lamassu/internal/shard/layout"
)

// migration is the dual-ring state a Store carries between
// BeginMigration and the mover's epoch commit. Invariants:
//
//   - The previous epoch's copies stay complete until the epoch
//     commits: EVERY write to a relocated key lands on the previous
//     owner first and on the new owner second (regardless of
//     confirmation), so a crash at any point leaves the old epoch
//     fully intact.
//   - A key is confirmed only after the mover copied it old→new under
//     the key's lock, so a confirmed key's new-owner copy is complete
//     and reads switch to it; unconfirmed relocated keys read from
//     the previous owner.
//   - Confirmations live in memory only. After a crash the moved set
//     is empty again: every read falls back to the (still fresh) old
//     copies, and rerunning the mover re-copies — idempotently — until
//     it converges.
type migration struct {
	prev *layout.Layout
	rec  *metrics.Recorder
	// invalidate, when non-nil, brackets the mover's per-file copies:
	// it is called before the first and after the last stripe of a
	// file moves, so a block cache above the store can drop entries
	// around the relocation window.
	invalidate func(name string)
	// onKeyMoved, when non-nil, runs after each key is confirmed —
	// before the mover's next copy — giving tests and tooling an exact
	// copy-boundary hook.
	onKeyMoved func(key string)

	// mu guards the maps below; it is an RWMutex because confirmed()
	// sits on the mid-migration READ path of every request and must
	// not serialize disjoint readers.
	mu    sync.RWMutex
	moved map[string]bool
	// keyLocks serialize the mover's copy of one key against the
	// dual-writes to it; fileLocks serialize whole-file operations
	// (truncate, remove, rename, the mover's per-file pass) that must
	// not interleave with a relocation. Order: fileLock before
	// keyLock, never the reverse.
	keyLocks  map[string]*sync.Mutex
	fileLocks map[string]*sync.Mutex

	totalKeys     atomic.Int64
	movedKeys     atomic.Int64
	movedBytes    atomic.Int64
	fallbackReads atomic.Int64
	mirrorWrites  atomic.Int64
	moverRunning  atomic.Bool
}

func newMigration(prev *layout.Layout) *migration {
	return &migration{
		prev:      prev,
		moved:     make(map[string]bool),
		keyLocks:  make(map[string]*sync.Mutex),
		fileLocks: make(map[string]*sync.Mutex),
	}
}

func (m *migration) confirmed(key string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.moved[key]
}

func (m *migration) confirm(key string) {
	m.mu.Lock()
	m.moved[key] = true
	m.mu.Unlock()
	m.movedKeys.Add(1)
	m.rec.CountEvent(metrics.MoveCopy, 1)
}

// forgetName drops the confirmations and locks of every key derived
// from name (called when the file is removed or renamed: a later
// incarnation of the name must restart unconfirmed).
func (m *migration) forgetName(name string) {
	prefix := name + "\x00"
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.moved {
		if k == name || (len(k) > len(prefix) && k[:len(prefix)] == prefix) {
			delete(m.moved, k)
		}
	}
}

func (m *migration) keyLock(key string) *sync.Mutex {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.keyLocks[key]
	if l == nil {
		l = &sync.Mutex{}
		m.keyLocks[key] = l
	}
	return l
}

func (m *migration) fileLock(name string) *sync.Mutex {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.fileLocks[name]
	if l == nil {
		l = &sync.Mutex{}
		m.fileLocks[name] = l
	}
	return l
}

// MigrateHooks configures the observability side of a migration.
type MigrateHooks struct {
	// Recorder receives FallbackRead / MirrorWrite / MoveCopy /
	// EpochBump events; nil disables them.
	Recorder *metrics.Recorder
	// Invalidate brackets each file's relocation (called before the
	// first and after the last key of the file moves) so caches above
	// the store can drop entries around the window.
	Invalidate func(name string)
	// OnKeyMoved runs after each key is confirmed, at an exact copy
	// boundary.
	OnKeyMoved func(key string)
}

// MigrationStatus is a point-in-time snapshot of a Store's migration.
type MigrationStatus struct {
	// Active reports a migration in progress (dual-ring routing on);
	// MoverRunning whether its mover goroutine is currently copying.
	Active, MoverRunning bool
	// Epoch is the settled epoch being served; TargetEpoch the epoch
	// being migrated to (0 when not Active).
	Epoch, TargetEpoch uint64
	// TotalKeys counts the placement keys the migration must relocate,
	// discovered file by file as the mover walks (0 until it starts);
	// MovedKeys how many are confirmed; MovedBytes the payload copied
	// by the mover.
	TotalKeys, MovedKeys, MovedBytes int64
	// FallbackReads counts reads served by the previous epoch's owner;
	// MirroredWrites counts writes dual-written to it.
	FallbackReads, MirroredWrites int64
}

// Migrating reports whether the store is serving two epochs.
func (s *Store) Migrating() bool { return s.topo.Load().mig != nil }

// MigrationStatus returns a snapshot of the migration state.
func (s *Store) MigrationStatus() MigrationStatus {
	t := s.topo.Load()
	if t.mig == nil {
		return MigrationStatus{Epoch: t.lay.Epoch()}
	}
	m := t.mig
	return MigrationStatus{
		Active:         true,
		MoverRunning:   m.moverRunning.Load(),
		Epoch:          m.prev.Epoch(),
		TargetEpoch:    t.lay.Epoch(),
		TotalKeys:      m.totalKeys.Load(),
		MovedKeys:      m.movedKeys.Load(),
		MovedBytes:     m.movedBytes.Load(),
		FallbackReads:  m.fallbackReads.Load(),
		MirroredWrites: m.mirrorWrites.Load(),
	}
}

// BeginMigration opens a new placement epoch over newStores and
// switches the store into dual-ring mode: writes route by the new
// ring (mirrored to the old owner until the epoch commits), reads
// fall back to the old owner. newStores must extend the current store
// list (grow) or be a prefix of it (shrink) — that identity-prefix
// rule is what lets a crashed migration be re-derived from the
// persisted record plus one store list. The migrating record is
// persisted to every participating store BEFORE any routing changes.
//
// Calling BeginMigration again with the same target while a migration
// is active is a resume: hooks are replaced, nothing else changes.
// The data copies happen in RunMover; until it completes (idempotent,
// rerunnable) the deployment stays fully readable and writable.
func (s *Store) BeginMigration(ctx context.Context, newStores []backend.Store, h MigrateHooks) error {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	t := s.topo.Load()
	if t.mig != nil {
		if len(newStores) != t.lay.Shards() {
			return fmt.Errorf("shard: migration to %d shards already in progress (got %d)",
				t.lay.Shards(), len(newStores))
		}
		for i, st := range newStores {
			if t.stores[i] != st {
				return fmt.Errorf("shard: store %d differs from the in-progress migration's target", i)
			}
		}
		t.mig.rec = h.Recorder
		t.mig.invalidate = h.Invalidate
		t.mig.onKeyMoved = h.OnKeyMoved
		return nil
	}
	if s.scrub.Load() != nil {
		return errors.New("shard: cannot begin a migration while a scrub pass runs")
	}
	cur := t.curStores()
	union, err := unionStoreList(cur, newStores)
	if err != nil {
		return err
	}
	newLay, err := layout.New(t.lay.Epoch()+1, len(newStores), t.lay.Vnodes(), t.lay.StripeBytes())
	if err != nil {
		return err
	}
	// The replication factor is part of the deployment's identity; the
	// new epoch inherits it, which bounds how far a shrink can go.
	if r := t.lay.Replicas(); r > 1 {
		if len(newStores) < r {
			return fmt.Errorf("shard: %d-way replication needs at least %d shards; migration target has %d",
				r, r, len(newStores))
		}
		newLay = newLay.WithReplicas(r)
	}
	if newLay.SamePlacement(t.lay) {
		return errors.New("shard: migration target has the same placement as the current epoch")
	}
	rec := layout.Record{
		Epoch:       newLay.Epoch(),
		State:       layout.StateMigrating,
		Shards:      newLay.Shards(),
		Vnodes:      newLay.Vnodes(),
		StripeBytes: newLay.StripeBytes(),
		PrevShards:  t.lay.Shards(),
		PrevVnodes:  t.lay.Vnodes(),
		Replicas:    recReplicas(newLay),
	}
	unionUniq := uniqueOf(union)
	for _, u := range unionUniq {
		if err := layout.WriteRecord(ctx, u.store, rec); err != nil {
			return fmt.Errorf("shard: persisting migration record: %w", err)
		}
	}
	mig := newMigration(t.lay)
	mig.rec = h.Recorder
	mig.invalidate = h.Invalidate
	mig.onKeyMoved = h.OnKeyMoved
	// Copy before growing: older topology snapshots still held by
	// in-flight operations share the backing array, and an in-place
	// append would race their counter reads.
	stats := append([]*shardCounters(nil), t.stats...)
	for len(stats) < len(union) {
		stats = append(stats, &shardCounters{})
	}
	health := append([]*slotHealth(nil), t.health...)
	for len(health) < len(union) {
		health = append(health, &slotHealth{})
	}
	s.topo.Store(&topology{
		stores: union,
		uniq:   unionUniq,
		lay:    newLay,
		mig:    mig,
		stats:  stats,
		health: health,
	})
	s.routeGen.Add(1)
	return nil
}

// unionStoreList validates the grow/shrink prefix rule and returns
// the slot list covering both epochs.
func unionStoreList(cur, next []backend.Store) ([]backend.Store, error) {
	if len(next) == 0 {
		return nil, errors.New("shard: migration needs at least one shard")
	}
	long, short := cur, next
	if len(next) > len(cur) {
		long, short = next, cur
	}
	if len(long) == len(short) {
		return nil, errors.New("shard: migration must add or remove shards (same count given)")
	}
	for i, st := range short {
		if st == nil || long[i] == nil {
			return nil, fmt.Errorf("shard: store %d is nil", i)
		}
		if long[i] != st {
			return nil, fmt.Errorf("shard: store %d differs between epochs; online rebalance grows by appending shards or shrinks by removing a suffix", i)
		}
	}
	return append([]backend.Store(nil), long...), nil
}

// RunMover copies every placement key whose owner changed between the
// two epochs from its old owner to its new one, confirms each key
// (switching its reads to the new ring), and finally commits the
// epoch: the stable record is persisted, stale copies are reaped, and
// the old ring is retired. It blocks until done; run it on a
// goroutine to keep serving while it works.
//
// RunMover honors ctx between key copies: a cancellation returns
// ErrCanceled with the migration still active and every byte still
// readable through the dual rings — exactly a crash cut — and calling
// RunMover again (in this process or after reopening the deployment)
// converges. It is safe with concurrent reads and writes through the
// same Store; copies are serialized per key against the mirror
// writes.
func (s *Store) RunMover(ctx context.Context) (RebalanceStats, error) {
	var st RebalanceStats
	t := s.topo.Load()
	mig := t.mig
	if mig == nil {
		return st, errors.New("shard: no migration in progress")
	}
	if !mig.moverRunning.CompareAndSwap(false, true) {
		return st, errors.New("shard: mover already running")
	}
	defer mig.moverRunning.Store(false)

	names, err := unionNamespace(t.uniq)
	if err != nil {
		return st, err
	}
	// TotalKeys is discovered as the walk proceeds (each file's changed
	// keys are counted just before its copies) rather than by a
	// separate upfront Stat sweep over every store; a rerun restarts
	// the gauge from what is already confirmed.
	mig.totalKeys.Store(mig.movedKeys.Load())

	for _, name := range names {
		if err := backend.CtxErr(ctx); err != nil {
			return st, err
		}
		if err := s.moverFile(ctx, t, name, &st); err != nil {
			return st, fmt.Errorf("shard: moving %q: %w", name, err)
		}
	}
	if err := backend.CtxErr(ctx); err != nil {
		return st, err
	}
	if err := s.commitEpoch(ctx, t, &st); err != nil {
		return st, err
	}
	return st, nil
}

// unionNamespace lists every name present on any participating store
// — the RAW per-store namespaces, not the home-filtered List, so a
// rerun after a crash still reaches half-moved files and stale
// copies. The layout record is excluded.
func unionNamespace(uniq []uniqueStore) ([]string, error) {
	seen := make(map[string]bool)
	var names []string
	for _, u := range uniq {
		ns, err := u.store.List()
		if err != nil {
			return nil, err
		}
		for _, n := range ns {
			if layout.IsReserved(n) || seen[n] {
				continue
			}
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// recReplicas is the record form of a layout's replication factor: 0
// (v1 record bytes) for single-copy, the factor itself otherwise.
func recReplicas(l *layout.Layout) int {
	if r := l.Replicas(); r > 1 {
		return r
	}
	return 0
}

// storeSet maps a slot list to its set of physical stores.
func (t *topology) storeSet(slots []int) map[backend.Store]bool {
	out := make(map[backend.Store]bool, len(slots))
	for _, sl := range slots {
		out[t.stores[sl]] = true
	}
	return out
}

// keyRelocated reports whether key's owner set differs between the two
// epochs — by physical store, so carve aliases do not count as moves.
func (t *topology) keyRelocated(key string) bool {
	if !t.replicated() {
		return t.lay.Owner(key) != t.mig.prev.Owner(key)
	}
	cur := t.storeSet(t.lay.Owners(key))
	prev := t.storeSet(t.mig.prev.Owners(key))
	if len(cur) != len(prev) {
		return true
	}
	for st := range cur {
		if !prev[st] {
			return true
		}
	}
	return false
}

// changedKeys lists the placement keys of a file whose owner set
// differs between the previous and current epochs.
func changedKeys(t *topology, name string, phys int64) []string {
	stripe := t.lay.StripeBytes()
	if stripe <= 0 {
		if t.keyRelocated(name) {
			return []string{name}
		}
		return nil
	}
	// An empty file has no stripes to copy; its existence under the
	// new epoch is the home-copy creation moverFile performs anyway.
	var keys []string
	nStripes := (phys + stripe - 1) / stripe
	for i := int64(0); i < nStripes; i++ {
		key := layout.StripeKey(name, i)
		if t.keyRelocated(key) {
			keys = append(keys, key)
		}
	}
	return keys
}

// copyKeyToOwners copies one key's range from the first previous-epoch
// owner holding the file to every current-epoch owner that is not
// itself a previous owner (those copies are authoritative already —
// the dual writes kept them fresh). Whole-file keys (hi < 0) replace
// the destination copy outright. Returns the payload bytes copied.
func (t *topology) copyKeyToOwners(name, key string, lo, hi int64) (int64, error) {
	prevSet := t.storeSet(t.mig.prev.Owners(key))
	var src backend.Store
	for _, sl := range t.dedupSlots(t.mig.prev.Owners(key)) {
		has, err := storeHas(t.stores[sl], name)
		if err != nil {
			return 0, err
		}
		if has {
			src = t.stores[sl]
			break
		}
	}
	if src == nil {
		// No previous owner holds a copy: nothing to move (the file
		// exists only under the new epoch, or not at all).
		return 0, nil
	}
	var total int64
	for _, sl := range t.dedupSlots(t.lay.Owners(key)) {
		dst := t.stores[sl]
		if dst == src || prevSet[dst] {
			continue
		}
		var n int64
		var err error
		if hi < 0 {
			n, err = copyNamed(src, name, dst, name)
		} else {
			n, err = copyRange(src, dst, name, lo, hi)
		}
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// moverFile relocates one file's changed keys old→new. It holds the
// file's migration lock throughout, excluding truncate/remove/rename
// (whose whole-file effects must not interleave with per-key copies);
// per-key it additionally takes the key lock, excluding the
// dual-writes to that key.
func (s *Store) moverFile(ctx context.Context, t *topology, name string, st *RebalanceStats) error {
	mig := t.mig
	fl := mig.fileLock(name)
	fl.Lock()
	defer fl.Unlock()

	st.Files++
	if mig.invalidate != nil {
		mig.invalidate(name)
		defer mig.invalidate(name)
	}

	curHomes := t.dedupSlots(t.lay.Owners(t.lay.KeyOf(name, 0)))
	prevHomes := t.dedupSlots(mig.prev.Owners(mig.prev.KeyOf(name, 0)))
	curHas, prevHas := false, false
	for _, sl := range curHomes {
		has, err := storeHas(t.stores[sl], name)
		if err != nil {
			return err
		}
		if has {
			curHas = true
			break
		}
	}
	for _, sl := range prevHomes {
		has, err := storeHas(t.stores[sl], name)
		if err != nil {
			return err
		}
		if has {
			prevHas = true
			break
		}
	}
	if !curHas && !prevHas {
		// Unreachable under either epoch: stale copies from an older
		// placement. Reap them.
		for _, u := range t.uniq {
			switch rerr := u.store.Remove(name); {
			case rerr == nil:
				st.RemovedCopies++
			case errors.Is(rerr, backend.ErrNotExist):
			default:
				return rerr
			}
		}
		return nil
	}
	var phys int64
	for _, u := range t.uniq {
		sz, err := u.store.Stat(name)
		if errors.Is(err, backend.ErrNotExist) {
			continue
		}
		if err != nil {
			return err
		}
		if sz > phys {
			phys = sz
		}
	}

	// The new home owners define existence once the epoch commits;
	// create their copies first (OpenCreate does not truncate, so data a
	// home store already holds — e.g. mirrored writes — survives).
	for _, sl := range curHomes {
		if err := ensureExists(t.stores[sl], name); err != nil {
			return err
		}
	}
	for _, key := range changedKeys(t, name, phys) {
		if !mig.confirmed(key) {
			mig.totalKeys.Add(1)
		}
	}

	moved := false
	stripe := t.lay.StripeBytes()
	if stripe <= 0 {
		if t.keyRelocated(name) && !mig.confirmed(name) {
			if err := backend.CtxErr(ctx); err != nil {
				return err
			}
			kl := mig.keyLock(name)
			kl.Lock()
			n, err := t.copyKeyToOwners(name, name, 0, -1)
			kl.Unlock()
			if err != nil {
				return err
			}
			mig.confirm(name)
			s.routeGen.Add(1)
			st.MovedStripes++
			st.MovedBytes += n
			mig.movedBytes.Add(n)
			moved = true
			if mig.onKeyMoved != nil {
				mig.onKeyMoved(name)
			}
		}
	} else {
		nStripes := (phys + stripe - 1) / stripe
		for i := int64(0); i < nStripes; i++ {
			key := layout.StripeKey(name, i)
			if !t.keyRelocated(key) || mig.confirmed(key) {
				continue
			}
			if err := backend.CtxErr(ctx); err != nil {
				return err
			}
			lo := i * stripe
			hi := min(lo+stripe, phys)
			kl := mig.keyLock(key)
			kl.Lock()
			n, err := t.copyKeyToOwners(name, key, lo, hi)
			kl.Unlock()
			if err != nil {
				return err
			}
			mig.confirm(key)
			s.routeGen.Add(1)
			st.MovedStripes++
			st.MovedBytes += n
			mig.movedBytes.Add(n)
			moved = true
			if mig.onKeyMoved != nil {
				mig.onKeyMoved(key)
			}
		}
		// Anchor the global size: every owner of the final byte under
		// the new placement must reach exactly phys, even when the final
		// stripe is a hole with no bytes to copy. (extendTo never
		// shrinks, so a concurrent append that outgrew phys is safe.)
		if phys > 0 {
			for _, sl := range t.dedupSlots(t.lay.Owners(t.lay.KeyOf(name, phys-1))) {
				if err := extendTo(t.stores[sl], name, phys); err != nil {
					return err
				}
			}
		}
	}
	if moved {
		st.MovedFiles++
	}
	return nil
}

// commitEpoch atomically retires the old ring once every key is
// confirmed: the reaping record lands on the new epoch's stores
// first (from that point the new epoch is authoritative even after a
// crash — all data has been copied), then stale old-owner copies are
// removed, retiring stores give up their records, the stable record
// is written, and the in-memory topology drops to single-ring mode.
func (s *Store) commitEpoch(ctx context.Context, t *topology, st *RebalanceStats) error {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	mig := t.mig
	newLay := t.lay
	cur := t.curStores()
	curUniq := uniqueOf(cur)
	rec := layout.Record{
		Epoch:       newLay.Epoch(),
		State:       layout.StateReaping,
		Shards:      newLay.Shards(),
		Vnodes:      newLay.Vnodes(),
		StripeBytes: newLay.StripeBytes(),
		PrevShards:  mig.prev.Shards(),
		PrevVnodes:  mig.prev.Vnodes(),
		Replicas:    recReplicas(newLay),
	}
	for _, u := range curUniq {
		if err := layout.WriteRecord(ctx, u.store, rec); err != nil {
			return fmt.Errorf("shard: committing epoch %d: %w", newLay.Epoch(), err)
		}
	}
	if err := reapStale(ctx, t.stores, t.uniq, newLay, st); err != nil {
		return err
	}
	curSet := make(map[backend.Store]bool, len(curUniq))
	for _, u := range curUniq {
		curSet[u.store] = true
	}
	for _, u := range t.uniq {
		if !curSet[u.store] {
			if err := layout.RemoveRecord(ctx, u.store); err != nil {
				return err
			}
		}
	}
	rec.State = layout.StateStable
	rec.PrevShards, rec.PrevVnodes = 0, 0
	for _, u := range curUniq {
		if err := layout.WriteRecord(ctx, u.store, rec); err != nil {
			return err
		}
	}
	s.topo.Store(&topology{
		stores: append([]backend.Store(nil), cur...),
		uniq:   curUniq,
		lay:    newLay,
		stats:  append([]*shardCounters(nil), t.stats[:len(cur)]...),
		health: append([]*slotHealth(nil), t.health[:len(cur)]...),
	})
	s.routeGen.Add(1)
	mig.rec.CountEvent(metrics.EpochBump, 1)
	return nil
}

// reapStale removes per-file copies from stores that own nothing
// under lay — the same cleanup the offline Rebalance performs inline.
// stores is the dense slot list lay's lookups index into.
func reapStale(ctx context.Context, stores []backend.Store, uniq []uniqueStore, lay *layout.Layout, st *RebalanceStats) error {
	names, err := unionNamespace(uniq)
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := backend.CtxErr(ctx); err != nil {
			return err
		}
		var phys int64
		for _, u := range uniq {
			sz, err := u.store.Stat(name)
			if errors.Is(err, backend.ErrNotExist) {
				continue
			}
			if err != nil {
				return err
			}
			if sz > phys {
				phys = sz
			}
		}
		owners := ownerStores(stores, lay, name, phys)
		for _, u := range uniq {
			if owners[u.store] {
				continue
			}
			switch err := u.store.Remove(name); {
			case err == nil:
				st.RemovedCopies++
			case errors.Is(err, backend.ErrNotExist):
			default:
				return err
			}
		}
	}
	return nil
}

// ownerStores returns the set of stores owning at least one placement
// key of the file under lay — every replica owner, not just the
// primary, so reaping never strips a live replica copy. stores is the
// dense slot list lay's lookups index into.
func ownerStores(stores []backend.Store, lay *layout.Layout, name string, phys int64) map[backend.Store]bool {
	owners := make(map[backend.Store]bool)
	for _, sl := range lay.Owners(lay.KeyOf(name, 0)) {
		owners[stores[sl]] = true
	}
	if stripe := lay.StripeBytes(); stripe > 0 {
		nStripes := (phys + stripe - 1) / stripe
		for i := int64(0); i < nStripes; i++ {
			for _, sl := range lay.Owners(layout.StripeKey(name, i)) {
				owners[stores[sl]] = true
			}
		}
	}
	return owners
}
