package shard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"lamassu/internal/backend"
	"lamassu/internal/core"
	"lamassu/internal/faultfs"
	"lamassu/internal/layout"
	"lamassu/internal/shard"
	placement "lamassu/internal/shard/layout"
	"lamassu/internal/vfs"
)

// rawDump snapshots every store's raw namespace, layout records
// excluded (they are online-rebalance bookkeeping, not data layout).
func rawDump(t *testing.T, stores []backend.Store) []map[string][]byte {
	t.Helper()
	out := make([]map[string][]byte, len(stores))
	for i, s := range stores {
		names, err := s.List()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = map[string][]byte{}
		for _, n := range names {
			if placement.IsReserved(n) {
				continue
			}
			data, err := backend.ReadFile(s, n)
			if err != nil {
				t.Fatal(err)
			}
			out[i][n] = data
		}
	}
	return out
}

// rawClone copies each store's complete raw content into a fresh
// MemStore, building byte-identical starting points for A/B runs.
func rawClone(t *testing.T, stores []backend.Store) []backend.Store {
	t.Helper()
	out := make([]backend.Store, len(stores))
	for i, s := range stores {
		dst := backend.NewMemStore()
		names, err := s.List()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			data, err := backend.ReadFile(s, n)
			if err != nil {
				t.Fatal(err)
			}
			if err := backend.WriteFile(dst, n, data); err != nil {
				t.Fatal(err)
			}
		}
		out[i] = dst
	}
	return out
}

// compareDumps asserts two deployments hold byte-identical data files
// slot by slot.
func compareDumps(t *testing.T, label string, got, want []map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d slots vs %d", label, len(got), len(want))
	}
	for i := range want {
		for n, wantData := range want[i] {
			gotData, ok := got[i][n]
			if !ok {
				t.Fatalf("%s: slot %d missing %q", label, i, n)
			}
			if !bytes.Equal(gotData, wantData) {
				t.Fatalf("%s: slot %d file %q diverges (%d vs %d bytes)", label, i, n, len(gotData), len(wantData))
			}
		}
		for n := range got[i] {
			if _, ok := want[i][n]; !ok {
				t.Fatalf("%s: slot %d holds unexpected %q", label, i, n)
			}
		}
	}
}

// The tentpole acceptance: growing 2 -> 3 shards ONLINE converges to
// a layout byte-identical to the offline Rebalance of the same
// topology, for both whole-file and striped placement, and the
// deployment reopens at the committed epoch.
func TestOnlineRebalanceGrowMatchesOffline(t *testing.T) {
	for _, stripe := range []int64{0, 4096} {
		t.Run(fmt.Sprintf("stripe=%d", stripe), func(t *testing.T) {
			cfg := shard.Config{StripeBytes: stripe}
			base, _ := memStores(2)
			orig, err := shard.New(base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			contents := populate(t, orig, 51)

			// Offline reference over a byte-identical clone.
			offStores := rawClone(t, base)
			offOld, err := shard.New(offStores, cfg)
			if err != nil {
				t.Fatal(err)
			}
			offAll := append(append([]backend.Store(nil), offStores...), backend.NewMemStore())
			offNew, err := shard.New(offAll, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := shard.Rebalance(offOld, offNew); err != nil {
				t.Fatal(err)
			}

			// Online run over another clone.
			onStores := rawClone(t, base)
			on, err := shard.New(onStores, cfg)
			if err != nil {
				t.Fatal(err)
			}
			onAll := append(append([]backend.Store(nil), onStores...), backend.NewMemStore())
			ctx := context.Background()
			if err := on.BeginMigration(ctx, onAll, shard.MigrateHooks{}); err != nil {
				t.Fatal(err)
			}
			if !on.Migrating() {
				t.Fatal("BeginMigration did not enter dual-ring mode")
			}
			stats, err := on.RunMover(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if stats.MovedStripes == 0 {
				t.Fatal("growth moved nothing; the new shard would stay empty")
			}
			if on.Migrating() {
				t.Fatal("migration still active after RunMover")
			}
			if on.Epoch() != 1 {
				t.Fatalf("Epoch = %d after commit, want 1", on.Epoch())
			}

			compareDumps(t, "online vs offline", rawDump(t, onAll), rawDump(t, offAll))
			verify(t, on, contents)

			// Reopening with the new topology adopts the committed epoch.
			fresh, err := shard.New(onAll, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.AdoptLayout(nil, 0); err != nil {
				t.Fatal(err)
			}
			if fresh.Epoch() != 1 || fresh.Migrating() {
				t.Fatalf("reopen: epoch %d migrating %v", fresh.Epoch(), fresh.Migrating())
			}
			verify(t, fresh, contents)

			// Reopening with a stale topology is rejected.
			stale, err := shard.New(onStores, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := stale.AdoptLayout(nil, 0); err == nil {
				t.Fatal("adopting a 3-shard deployment with 2 stores succeeded")
			}
			// And the epoch assertion catches mismatches.
			again, _ := shard.New(onAll, cfg)
			if err := again.AdoptLayout(nil, 2); err == nil {
				t.Fatal("epoch assertion 2 on an epoch-1 deployment succeeded")
			}
		})
	}
}

// A mount keeps serving correct reads AND absorbing writes at every
// copy boundary of the mover: the gated hooks pause the mover after
// each confirmed key while the test reads every file back and
// overwrites live ranges, comparing against an in-memory model
// throughout. Dual-ring bookkeeping must show real fallback traffic.
func TestOnlineRebalanceServesDuringMigration(t *testing.T) {
	cfg := shard.Config{StripeBytes: 4096}
	base, _ := memStores(2)
	ss, err := shard.New(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	contents := populate(t, ss, 52)
	fs, err := core.New(ss, core.Config{Inner: testKey(1), Outer: testKey(2)})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for n := range contents {
		names = append(names, n)
	}

	checkAll := func(when string) {
		t.Helper()
		for _, n := range names {
			got, err := vfs.ReadAll(fs, n)
			if err != nil {
				t.Fatalf("%s: read %s: %v", when, n, err)
			}
			if !bytes.Equal(got, contents[n]) {
				t.Fatalf("%s: %s diverged from the model", when, n)
			}
		}
	}
	rng := rand.New(rand.NewSource(97))
	mutate := func() {
		t.Helper()
		// Overwrite a live 4 KiB-aligned range of a non-empty file (no
		// grows: the workload must not change any file's size while the
		// mover holds its file lock).
		for tries := 0; tries < 20; tries++ {
			n := names[rng.Intn(len(names))]
			if len(contents[n]) < 4096 {
				continue
			}
			off := int64(rng.Intn(len(contents[n])/4096)) * 4096
			blk := make([]byte, 4096)
			rng.Read(blk)
			end := min(int(off)+len(blk), len(contents[n]))
			f, err := fs.OpenRW(n)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(blk[:end-int(off)], off); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			copy(contents[n][off:end], blk)
			return
		}
	}

	step := make(chan struct{})
	resume := make(chan struct{})
	hooks := shard.MigrateHooks{OnKeyMoved: func(string) { step <- struct{}{}; <-resume }}
	grown := append(append([]backend.Store(nil), base...), backend.NewMemStore())
	if err := ss.BeginMigration(context.Background(), grown, hooks); err != nil {
		t.Fatal(err)
	}
	checkAll("pre-mover dual-ring")
	mutate()
	checkAll("after dual-ring write")

	moverDone := make(chan error, 1)
	go func() {
		_, err := ss.RunMover(context.Background())
		moverDone <- err
	}()
	boundaries := 0
loop:
	for {
		select {
		case <-step:
			boundaries++
			checkAll(fmt.Sprintf("boundary %d", boundaries))
			mutate()
			checkAll(fmt.Sprintf("boundary %d after write", boundaries))
			resume <- struct{}{}
		case err := <-moverDone:
			if err != nil {
				t.Fatalf("mover: %v", err)
			}
			break loop
		}
	}
	if boundaries == 0 {
		t.Fatal("mover confirmed no keys; the sweep tested nothing")
	}
	checkAll("after commit")
	if ss.Epoch() != 1 || ss.Migrating() {
		t.Fatalf("epoch %d migrating %v after commit", ss.Epoch(), ss.Migrating())
	}
	st := ss.MigrationStatus()
	if st.Active {
		t.Fatal("status still active after commit")
	}
	verify(t, ss, contents)
}

// The acceptance crash sweep: kill the mover at EVERY copy boundary
// (simulated process death — the in-memory confirmation set is
// discarded), then reopen the deployment on either epoch:
//
//   - with the OLD store list, it serves the previous epoch, complete;
//   - with the full list, it resumes dual-ring mode mid-migration,
//     serves everything, and rerunning the mover converges to a layout
//     byte-identical to the offline Rebalance.
func TestMoverCrashSweepEitherEpoch(t *testing.T) {
	cfg := shard.Config{StripeBytes: 4096}
	base, _ := memStores(2)
	orig, err := shard.New(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	contents := populate(t, orig, 53)

	// Offline reference for the final layout.
	offStores := rawClone(t, base)
	offOld, _ := shard.New(offStores, cfg)
	offAll := append(append([]backend.Store(nil), offStores...), backend.NewMemStore())
	offNew, _ := shard.New(offAll, cfg)
	if _, err := shard.Rebalance(offOld, offNew); err != nil {
		t.Fatal(err)
	}
	wantDump := rawDump(t, offAll)

	// Count the copy boundaries with a dry full run.
	dryStores := rawClone(t, base)
	dry, _ := shard.New(dryStores, cfg)
	total := 0
	dryAll := append(append([]backend.Store(nil), dryStores...), backend.NewMemStore())
	if err := dry.BeginMigration(context.Background(), dryAll,
		shard.MigrateHooks{OnKeyMoved: func(string) { total++ }}); err != nil {
		t.Fatal(err)
	}
	if _, err := dry.RunMover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if total < 3 {
		t.Fatalf("only %d copy boundaries; widen the workload", total)
	}

	stride := 1
	if testing.Short() {
		stride = 3
	}
	for k := 1; k <= total; k += stride {
		stores := rawClone(t, base)
		all := append(append([]backend.Store(nil), stores...), backend.NewMemStore())
		ss, err := shard.New(stores, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		hooks := shard.MigrateHooks{OnKeyMoved: func(string) {
			if n++; n == k {
				cancel()
			}
		}}
		if err := ss.BeginMigration(ctx, all, hooks); err != nil {
			t.Fatalf("k=%d: begin: %v", k, err)
		}
		if _, err := ss.RunMover(ctx); !errors.Is(err, backend.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: mover returned %v, want ErrCanceled wrapping context.Canceled", k, err)
		}
		cancel()

		// Reopen on the OLD epoch: the 2 original stores serve epoch 0,
		// complete (dual-writes and deferred reaping kept them whole).
		oldView, err := shard.New(stores, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := oldView.AdoptLayout(nil, 0); err != nil {
			t.Fatalf("k=%d: reopen old epoch: %v", k, err)
		}
		if oldView.Epoch() != 0 || oldView.Migrating() {
			t.Fatalf("k=%d: old view epoch %d migrating %v", k, oldView.Epoch(), oldView.Migrating())
		}
		verify(t, oldView, contents)

		// Reopen on the NEW epoch (full list): dual-ring mode resumes,
		// everything is readable mid-migration, and the rerun converges.
		resumed, err := shard.New(all, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.AdoptLayout(nil, 0); err != nil {
			t.Fatalf("k=%d: reopen union: %v", k, err)
		}
		if !resumed.Migrating() {
			t.Fatalf("k=%d: union reopen did not resume the migration", k)
		}
		if st := resumed.MigrationStatus(); st.Epoch != 0 || st.TargetEpoch != 1 {
			t.Fatalf("k=%d: resumed status %+v", k, st)
		}
		verify(t, resumed, contents)
		if _, err := resumed.RunMover(context.Background()); err != nil {
			t.Fatalf("k=%d: resumed mover: %v", k, err)
		}
		if resumed.Epoch() != 1 || resumed.Migrating() {
			t.Fatalf("k=%d: post-resume epoch %d migrating %v", k, resumed.Epoch(), resumed.Migrating())
		}
		verify(t, resumed, contents)
		compareDumps(t, fmt.Sprintf("k=%d final layout", k), rawDump(t, all), wantDump)
	}
}

// cancelStore wraps a backend.Store and fires a context cancellation
// after a fixed number of WriteAt calls — the deterministic
// interruption the offline-cancellation test needs.
type cancelStore struct {
	inner  backend.Store
	writes atomic.Int64
	limit  int64
	cancel context.CancelFunc
}

func (s *cancelStore) Open(name string, flag backend.OpenFlag) (backend.File, error) {
	f, err := s.inner.Open(name, flag)
	if err != nil {
		return nil, err
	}
	return &cancelFile{File: f, s: s}, nil
}

func (s *cancelStore) Remove(name string) error             { return s.inner.Remove(name) }
func (s *cancelStore) Rename(oldName, newName string) error { return s.inner.Rename(oldName, newName) }
func (s *cancelStore) List() ([]string, error)              { return s.inner.List() }
func (s *cancelStore) Stat(name string) (int64, error)      { return s.inner.Stat(name) }

type cancelFile struct {
	backend.File
	s *cancelStore
}

func (f *cancelFile) WriteAt(p []byte, off int64) (int, error) {
	if f.s.writes.Add(1) == f.s.limit {
		f.s.cancel()
	}
	return f.File.WriteAt(p, off)
}

// Offline Rebalance honors ctx between key copies (the satellite fix):
// a canceled pass returns ErrCanceled cut at a copy boundary, and the
// rerun converges to the verified layout.
func TestOfflineRebalanceCtxCancelConverges(t *testing.T) {
	cfg := shard.Config{StripeBytes: 4096}
	base, _ := memStores(2)
	old, err := shard.New(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	contents := populate(t, old, 54)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Growth moves keys only onto the new shard, so counting its
	// writes interrupts the pass partway deterministically.
	cs := &cancelStore{inner: backend.NewMemStore(), limit: 2, cancel: cancel}
	all := append(append([]backend.Store(nil), base...), cs)
	grown, err := shard.New(all, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = shard.RebalanceCtx(ctx, old, grown)
	if !errors.Is(err, backend.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled rebalance returned %v", err)
	}
	if cs.writes.Load() < cs.limit {
		t.Fatalf("pass stopped after %d writes, before the trigger", cs.writes.Load())
	}

	// Rerun with a live context: converges, then a settled pass is a
	// no-op.
	if _, err := shard.RebalanceCtx(context.Background(), old, grown); err != nil {
		t.Fatal(err)
	}
	verify(t, grown, contents)
	st, err := shard.RebalanceCtx(context.Background(), grown, grown)
	if err != nil {
		t.Fatal(err)
	}
	if st.MovedStripes != 0 {
		t.Fatalf("settled pass moved %d stripes", st.MovedStripes)
	}
	verify(t, grown, contents)
}

// The sweep above kills the mover with the data untouched; this one
// additionally WRITES after each kill boundary, while some keys are
// already confirmed. Those writes route to the new owners but must
// keep mirroring to the old ones (regression: mirroring used to stop
// at confirmation): after the simulated crash every confirmation is
// forgotten, so reads on either epoch fall back to the old copies —
// which therefore must contain the post-boundary writes — and the
// resumed mover re-copies from them without clobbering fresh data.
func TestMoverCrashSweepWithWrites(t *testing.T) {
	cfg := shard.Config{StripeBytes: 4096}
	base, _ := memStores(2)
	orig, err := shard.New(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	contents := populate(t, orig, 56)

	// Count copy boundaries with a dry run over a clone.
	dryStores := rawClone(t, base)
	dry, _ := shard.New(dryStores, cfg)
	total := 0
	dryAll := append(append([]backend.Store(nil), dryStores...), backend.NewMemStore())
	if err := dry.BeginMigration(context.Background(), dryAll,
		shard.MigrateHooks{OnKeyMoved: func(string) { total++ }}); err != nil {
		t.Fatal(err)
	}
	if _, err := dry.RunMover(context.Background()); err != nil {
		t.Fatal(err)
	}

	stride := 1
	if testing.Short() {
		stride = 3
	}
	writeTargets := []string{"file-09", "file-11", "file-07"}
	for k := 1; k <= total; k += stride {
		iterContents := make(map[string][]byte, len(contents))
		for n, d := range contents {
			iterContents[n] = append([]byte(nil), d...)
		}
		stores := rawClone(t, base)
		all := append(append([]backend.Store(nil), stores...), backend.NewMemStore())
		ss, err := shard.New(stores, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		if err := ss.BeginMigration(ctx, all, shard.MigrateHooks{OnKeyMoved: func(string) {
			if n++; n == k {
				cancel()
			}
		}}); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.RunMover(ctx); !errors.Is(err, backend.ErrCanceled) {
			t.Fatalf("k=%d: mover returned %v", k, err)
		}
		cancel()

		wfs, err := core.New(ss, core.Config{Inner: testKey(1), Outer: testKey(2)})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(600 + k)))
		for _, name := range writeTargets {
			blk := make([]byte, 4096)
			rng.Read(blk)
			f, err := wfs.OpenRW(name)
			if err != nil {
				t.Fatal(err)
			}
			off := int64(rng.Intn(len(iterContents[name])/4096)) * 4096
			if _, err := f.WriteAt(blk, off); err != nil {
				t.Fatalf("k=%d: post-boundary write: %v", k, err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			end := min(int(off)+4096, len(iterContents[name]))
			copy(iterContents[name][off:end], blk[:end-int(off)])
		}

		// Crash: drop ss (confirmations lost). Either-epoch reopen must
		// see the post-boundary writes.
		oldView, err := shard.New(stores, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := oldView.AdoptLayout(nil, 0); err != nil {
			t.Fatalf("k=%d: reopen old epoch: %v", k, err)
		}
		verify(t, oldView, iterContents)

		resumed, err := shard.New(all, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.AdoptLayout(nil, 0); err != nil {
			t.Fatalf("k=%d: reopen union: %v", k, err)
		}
		verify(t, resumed, iterContents)
		if _, err := resumed.RunMover(context.Background()); err != nil {
			t.Fatalf("k=%d: resumed mover: %v", k, err)
		}
		verify(t, resumed, iterContents)
		if resumed.Epoch() != 1 {
			t.Fatalf("k=%d: epoch %d after resume", k, resumed.Epoch())
		}
	}
}

// Rename and Remove keep working mid-migration (regression: Rename
// used to re-acquire the file's non-reentrant migration lock through
// Remove and deadlock), and the renamed file survives the completed
// migration.
func TestRenameRemoveDuringMigration(t *testing.T) {
	for _, stripe := range []int64{0, 4096} {
		t.Run(fmt.Sprintf("stripe=%d", stripe), func(t *testing.T) {
			cfg := shard.Config{StripeBytes: stripe}
			base, _ := memStores(2)
			ss, err := shard.New(base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			contents := populate(t, ss, 55)
			grown := append(append([]backend.Store(nil), base...), backend.NewMemStore())
			if err := ss.BeginMigration(context.Background(), grown, shard.MigrateHooks{}); err != nil {
				t.Fatal(err)
			}

			done := make(chan error, 1)
			go func() {
				var err error
				if err = ss.Rename("file-05", "renamed-05"); err == nil {
					err = ss.Remove("file-03")
				}
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("rename/remove deadlocked during migration")
			}
			contents["renamed-05"] = contents["file-05"]
			delete(contents, "file-05")
			delete(contents, "file-03")

			if _, err := ss.RunMover(context.Background()); err != nil {
				t.Fatal(err)
			}
			verify(t, ss, contents)
		})
	}
}

// The layout record's name is reserved at the sharded-store surface:
// invisible to reads and List, rejected for creation.
func TestRecordNameReserved(t *testing.T) {
	s, _ := newShardStore(t, 2, 0)
	if _, err := s.Open(placement.RecordName, backend.OpenRead); !errors.Is(err, backend.ErrNotExist) {
		t.Fatalf("Open(record, read) = %v", err)
	}
	if _, err := s.Open(placement.RecordName, backend.OpenCreate); err == nil {
		t.Fatal("creating the record name succeeded")
	}
	if err := s.Rename("x", placement.RecordName); err == nil {
		t.Fatal("renaming onto the record name succeeded")
	}
	if _, err := s.Stat(placement.RecordName); !errors.Is(err, backend.ErrNotExist) {
		t.Fatalf("Stat(record) = %v", err)
	}
	// Begin a migration so records exist, then List must hide them.
	grown := append(s.Shards(), backend.NewMemStore())
	if err := s.BeginMigration(context.Background(), grown, shard.MigrateHooks{}); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == placement.RecordName {
			t.Fatal("List leaked the layout record")
		}
	}
}

// FuzzDualRingConsistency drives a migrating sharded LamassuFS and an
// UNSHARDED model through identical operation sequences — writes,
// truncates, reads — across every migration phase (pre-migration,
// dual-ring with nothing confirmed, mid-migration after a canceled
// mover, and post-commit) and asserts the contents never diverge.
func FuzzDualRingConsistency(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(2))
	f.Add(int64(42), uint8(30), uint8(5))
	f.Add(int64(-7), uint8(7), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nOps, cancelAfter uint8) {
		geo, err := layout.NewGeometry(512, 4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{Inner: testKey(1), Outer: testKey(2), Geometry: geo}
		base, _ := memStores(2)
		ss, err := shard.New(base, shard.Config{StripeBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := core.New(ss, cfg)
		if err != nil {
			t.Fatal(err)
		}
		model, err := core.New(backend.NewMemStore(), cfg)
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(seed))
		names := []string{"a", "b", "c"}
		apply := func(fs vfs.FS, opSeed int64) {
			t.Helper()
			r := rand.New(rand.NewSource(opSeed))
			name := names[r.Intn(len(names))]
			switch r.Intn(4) {
			case 0, 1: // write a random range
				off := int64(r.Intn(6000))
				buf := make([]byte, 1+r.Intn(2000))
				r.Read(buf)
				f, err := fs.Create(name)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteAt(buf, off); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
			case 2: // truncate
				f, err := fs.Create(name)
				if err != nil {
					t.Fatal(err)
				}
				if err := f.Truncate(int64(r.Intn(8000))); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
			case 3: // remove
				_ = fs.Remove(name)
			}
		}
		compare := func(phase string) {
			t.Helper()
			for _, n := range names {
				want, werr := vfs.ReadAll(model, n)
				got, gerr := vfs.ReadAll(sharded, n)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s: %s: model err %v, sharded err %v", phase, n, werr, gerr)
				}
				if werr == nil && !bytes.Equal(got, want) {
					t.Fatalf("%s: %s diverged (%d vs %d bytes)", phase, n, len(got), len(want))
				}
			}
		}

		ops := int(nOps%40) + 5
		phase := func(label string, count int) {
			for i := 0; i < count; i++ {
				opSeed := rng.Int63()
				apply(model, opSeed)
				apply(sharded, opSeed)
			}
			compare(label)
		}

		phase("pre-migration", ops/2+1)

		grown := append(append([]backend.Store(nil), base...), backend.NewMemStore())
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		limit := int(cancelAfter%6) + 1
		hooks := shard.MigrateHooks{OnKeyMoved: func(string) {
			if n++; n == limit {
				cancel()
			}
		}}
		if err := ss.BeginMigration(context.Background(), grown, hooks); err != nil {
			t.Fatal(err)
		}
		phase("dual-ring unconfirmed", ops/2+1)

		if _, err := ss.RunMover(ctx); err != nil && !errors.Is(err, backend.ErrCanceled) {
			t.Fatal(err)
		}
		cancel()
		phase("mid-migration", ops/2+1)

		if ss.Migrating() {
			if _, err := ss.RunMover(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		phase("post-commit", ops/2+1)
		if ss.Migrating() {
			t.Fatal("migration still active at the end")
		}
	})
}

// TestFaultSoakRandomized is the nightly randomized per-shard crash
// soak (gated out of tier-1 by LAMASSU_SOAK): long random schedules
// of one-shard crashes during overwrite workloads, before AND during
// an online rebalance, each followed by recovery, a clean audit, and
// per-block atomicity checks, then a mover rerun that must converge
// and commit the epoch.
func TestFaultSoakRandomized(t *testing.T) {
	if os.Getenv("LAMASSU_SOAK") == "" {
		t.Skip("set LAMASSU_SOAK=1 (nightly CI) to run the randomized fault soak")
	}
	iters := 20
	if v := os.Getenv("LAMASSU_SOAK_ITERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			iters = n
		}
	}
	geo, err := layout.NewGeometry(512, 4)
	if err != nil {
		t.Fatal(err)
	}
	const (
		nBlocks = 48
		bs      = 512
	)
	for iter := 0; iter < iters; iter++ {
		rng := rand.New(rand.NewSource(int64(1000 + iter)))
		shards := 2 + rng.Intn(3)
		stripe := int64(bs) * int64(1+rng.Intn(4)) * 2
		cfg := core.Config{Inner: testKey(1), Outer: testKey(2), Geometry: geo, Parallelism: 4}

		stores := make([]backend.Store, shards)
		faults := make([]*faultfs.Store, shards)
		for i := range stores {
			faults[i] = faultfs.New(backend.NewMemStore())
			stores[i] = faults[i]
		}
		ss, err := shard.New(stores, shard.Config{StripeBytes: stripe})
		if err != nil {
			t.Fatal(err)
		}
		lfs, err := core.New(ss, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteAll(lfs, "f", make([]byte, nBlocks*bs)); err != nil {
			t.Fatal(err)
		}
		legit := make([]map[string]bool, nBlocks)
		zero := string(make([]byte, bs))
		for i := range legit {
			legit[i] = map[string]bool{zero: true}
		}

		crashPhase := func(label string, seed int64) {
			t.Helper()
			victim := rng.Intn(shards)
			faults[victim].Arm(faultfs.ModeCrashAfter, int64(1+rng.Intn(40)), 0)
			fw, err := lfs.OpenRW("f")
			if err != nil {
				t.Fatalf("iter %d %s: open: %v", iter, label, err)
			}
			r2 := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				b := r2.Intn(nBlocks)
				blk := make([]byte, bs)
				r2.Read(blk)
				legit[b][string(blk)] = true
				if _, err := fw.WriteAt(blk, int64(b*bs)); err != nil {
					break
				}
			}
			_ = fw.Sync()
			_ = fw.Close()
			for _, fs := range faults {
				fs.Disarm()
			}
			if _, err := lfs.Recover("f"); err != nil {
				t.Fatalf("iter %d %s: recover: %v", iter, label, err)
			}
			rep, err := lfs.Check("f")
			if err != nil || !rep.Clean() {
				t.Fatalf("iter %d %s: audit %+v %v", iter, label, rep, err)
			}
			got, err := vfs.ReadAll(lfs, "f")
			if err != nil || len(got) != nBlocks*bs {
				t.Fatalf("iter %d %s: read %d bytes, %v", iter, label, len(got), err)
			}
			for b := 0; b < nBlocks; b++ {
				if !legit[b][string(got[b*bs:(b+1)*bs])] {
					t.Fatalf("iter %d %s: block %d holds an illegitimate value", iter, label, b)
				}
			}
		}

		crashPhase("pre-migration", rng.Int63())

		// Online rebalance with a randomly interrupted mover.
		extra := faultfs.New(backend.NewMemStore())
		grown := append(append([]backend.Store(nil), stores...), extra)
		ctx, cancel := context.WithCancel(context.Background())
		limit := 1 + rng.Intn(6)
		n := 0
		hooks := shard.MigrateHooks{OnKeyMoved: func(string) {
			if n++; n == limit {
				cancel()
			}
		}}
		if err := ss.BeginMigration(context.Background(), grown, hooks); err != nil {
			t.Fatalf("iter %d: begin: %v", iter, err)
		}
		if _, err := ss.RunMover(ctx); err != nil && !errors.Is(err, backend.ErrCanceled) {
			t.Fatalf("iter %d: mover: %v", iter, err)
		}
		cancel()

		crashPhase("mid-migration", rng.Int63())

		if ss.Migrating() {
			if _, err := ss.RunMover(context.Background()); err != nil {
				t.Fatalf("iter %d: mover rerun: %v", iter, err)
			}
		}
		if ss.Migrating() || ss.Epoch() != 1 {
			t.Fatalf("iter %d: epoch %d migrating %v", iter, ss.Epoch(), ss.Migrating())
		}
		crashPhase("post-commit", rng.Int63())
	}
}
