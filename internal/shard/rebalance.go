package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"lamassu/internal/backend"
	"lamassu/internal/shard/layout"
)

// RebalanceStats summarizes an offline Rebalance pass.
type RebalanceStats struct {
	// Files is the number of files examined.
	Files int
	// MovedFiles counts files that had at least one byte migrated.
	MovedFiles int
	// MovedStripes counts stripe (or whole-file) moves performed.
	MovedStripes int64
	// MovedBytes totals the payload bytes copied between stores.
	MovedBytes int64
	// RemovedCopies counts stale per-shard file copies deleted.
	RemovedCopies int
}

// Rebalance migrates a sharded deployment from one placement to
// another — the offline step behind adding or removing shards. Both
// views must be over the same stripe unit; the underlying stores may
// overlap arbitrarily (adding a shard passes the old stores plus one).
//
// Consistent hashing keeps the work proportional to the placement
// delta: only keys whose owning store actually changed are touched —
// growing N stores to N+1 moves about 1/(N+1) of the keys, all of
// them onto the new store. Identical rings move nothing.
//
// Rebalance is OFFLINE: no Mount or handle may be using either view
// while it runs. It is idempotent — rerunning after a crash midway
// completes the migration (a stripe already copied is simply copied
// again; removals only happen after the copy landed). For migrating a
// LIVE deployment without downtime see BeginMigration/RunMover.
func Rebalance(from, to *Store) (RebalanceStats, error) { return RebalanceCtx(nil, from, to) }

// RebalanceCtx is Rebalance honoring ctx between key copies: a
// cancellation returns ErrCanceled with the pass cut at a copy
// boundary — exactly the crash case the idempotency contract covers —
// and rerunning with a live context converges.
func RebalanceCtx(ctx context.Context, from, to *Store) (RebalanceStats, error) {
	var st RebalanceStats
	ft, tt := from.topo.Load(), to.topo.Load()
	if ft.mig != nil || tt.mig != nil {
		return st, errors.New("shard: offline rebalance over a store with an active migration")
	}
	if ft.lay.StripeBytes() != tt.lay.StripeBytes() {
		return st, fmt.Errorf("shard: rebalance stripe mismatch: %d vs %d",
			ft.lay.StripeBytes(), tt.lay.StripeBytes())
	}
	if ft.lay.Replicas() != tt.lay.Replicas() {
		return st, fmt.Errorf("shard: rebalance replication mismatch: %d-way vs %d-way",
			ft.lay.Replicas(), tt.lay.Replicas())
	}
	// Iterate the union of every store's raw namespace, not the
	// home-filtered List: a rerun after a crash mid-pass must still
	// reach files whose old-home copy was already moved, and stale
	// copies stranded on non-owner stores must still be reaped. The
	// layout record never migrates (it is per-store state, maintained
	// below).
	seen := make(map[string]bool)
	var names []string
	for _, s := range uniqueStores(ft.stores, tt.stores) {
		ns, err := s.List()
		if err != nil {
			return st, err
		}
		for _, n := range ns {
			if !layout.IsReserved(n) && !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := backend.CtxErr(ctx); err != nil {
			return st, err
		}
		if err := rebalanceFile(ctx, ft, tt, name, &st); err != nil {
			return st, fmt.Errorf("shard: rebalancing %q: %w", name, err)
		}
	}
	if err := settleRecords(ctx, ft, tt); err != nil {
		return st, err
	}
	return st, nil
}

// settleRecords updates persisted layout records after an offline
// rebalance, for deployments that have them (i.e. ones that were at
// some point rebalanced online): the destination view gets a stable
// record one epoch past the newest seen, stores leaving the
// deployment lose theirs. Deployments without records stay
// record-free — the offline path adds no on-disk state of its own.
func settleRecords(ctx context.Context, ft, tt *topology) error {
	var (
		maxEpoch uint64
		found    bool
	)
	for _, s := range uniqueStores(ft.stores, tt.stores) {
		rec, ok, err := layout.ReadRecord(ctx, s)
		if err != nil {
			return err
		}
		if ok {
			found = true
			if rec.Epoch > maxEpoch {
				maxEpoch = rec.Epoch
			}
		}
	}
	if !found {
		return nil
	}
	rec := layout.Record{
		Epoch:       maxEpoch + 1,
		State:       layout.StateStable,
		Shards:      tt.lay.Shards(),
		Vnodes:      tt.lay.Vnodes(),
		StripeBytes: tt.lay.StripeBytes(),
		Replicas:    recReplicas(tt.lay),
	}
	inTo := make(map[backend.Store]bool)
	for _, u := range tt.uniq {
		inTo[u.store] = true
		if err := layout.WriteRecord(ctx, u.store, rec); err != nil {
			return err
		}
	}
	for _, u := range ft.uniq {
		if !inTo[u.store] {
			if err := layout.RemoveRecord(ctx, u.store); err != nil {
				return err
			}
		}
	}
	return nil
}

func rebalanceFile(ctx context.Context, from, to *topology, name string, st *RebalanceStats) error {
	st.Files++
	all := uniqueStores(from.stores, to.stores)

	// Existence and physical size are judged across BOTH views: after
	// an interrupted pass, the file's home copy may already sit on the
	// new home only, and its tail may live only on the new anchor
	// store — one the old view cannot see. Judging from the old view
	// alone would under-size the file and reap its tail as garbage.
	anyHas := func(t *topology, slots []int) (bool, error) {
		for _, sl := range slots {
			has, err := storeHas(t.stores[sl], name)
			if err != nil || has {
				return has, err
			}
		}
		return false, nil
	}
	fromHomes := from.dedupSlots(from.lay.Owners(from.lay.KeyOf(name, 0)))
	toHomes := to.dedupSlots(to.lay.Owners(to.lay.KeyOf(name, 0)))
	fromHome, err := anyHas(from, fromHomes)
	if err != nil {
		return err
	}
	toHome, err := anyHas(to, toHomes)
	if err != nil {
		return err
	}
	if !fromHome && !toHome {
		// Unreachable under either view: stale copies from an older
		// placement epoch. Reap them.
		for _, s := range all {
			switch rerr := s.Remove(name); {
			case rerr == nil:
				st.RemovedCopies++
			case errors.Is(rerr, backend.ErrNotExist):
			default:
				return rerr
			}
		}
		return nil
	}
	var phys int64
	for _, s := range all {
		sz, err := s.Stat(name)
		if errors.Is(err, backend.ErrNotExist) {
			continue
		}
		if err != nil {
			return err
		}
		if sz > phys {
			phys = sz
		}
	}

	// The new home owners define existence under the new placement;
	// create their copies first (OpenCreate does not truncate, so data a
	// home store already holds survives).
	for _, sl := range toHomes {
		if err := ensureExists(to.stores[sl], name); err != nil {
			return err
		}
	}

	moved := false
	owners := make(map[backend.Store]bool)
	for _, sl := range toHomes {
		owners[to.stores[sl]] = true
	}
	// copyKey moves one key's range from the first from-owner holding a
	// copy to every to-owner that is not itself a from-owner (those
	// copies are authoritative already). hi < 0 selects a whole-file
	// copy. The cancellation point sits BETWEEN key copies: a canceled
	// pass is cut at a copy boundary, the crash case the idempotency
	// contract already covers.
	copyKey := func(key string, lo, hi int64) error {
		fromSlots := from.dedupSlots(from.lay.Owners(key))
		fromSet := make(map[backend.Store]bool, len(fromSlots))
		for _, sl := range fromSlots {
			fromSet[from.stores[sl]] = true
		}
		var src backend.Store
		for _, sl := range fromSlots {
			has, err := storeHas(from.stores[sl], name)
			if err != nil {
				return err
			}
			if has {
				src = from.stores[sl]
				break
			}
		}
		for _, sl := range to.dedupSlots(to.lay.Owners(key)) {
			dst := to.stores[sl]
			owners[dst] = true
			// src == nil: no from-owner holds a copy — already moved by
			// an interrupted earlier pass (or never written).
			if src == nil || dst == src || fromSet[dst] {
				continue
			}
			if err := backend.CtxErr(ctx); err != nil {
				return err
			}
			var n int64
			var err error
			if hi < 0 {
				n, err = copyNamed(src, name, dst, name)
			} else {
				n, err = copyRange(src, dst, name, lo, hi)
			}
			if err != nil {
				return err
			}
			st.MovedStripes++
			st.MovedBytes += n
			moved = true
		}
		return nil
	}
	if stripe := to.lay.StripeBytes(); stripe <= 0 {
		// Whole-file placement: one key per file.
		if err := copyKey(name, 0, -1); err != nil {
			return err
		}
	} else {
		nStripes := (phys + stripe - 1) / stripe
		for s := int64(0); s < nStripes; s++ {
			lo := s * stripe
			hi := min(lo+stripe, phys)
			if err := copyKey(layout.StripeKey(name, s), lo, hi); err != nil {
				return err
			}
		}
		// Anchor the global size: every owner of the final byte under
		// the new placement must reach exactly phys, even when the final
		// stripe is a hole with no bytes to copy.
		if phys > 0 {
			for _, sl := range to.dedupSlots(to.lay.Owners(to.lay.KeyOf(name, phys-1))) {
				if err := extendTo(to.stores[sl], name, phys); err != nil {
					return err
				}
			}
		}
	}
	if moved {
		st.MovedFiles++
	}

	// Drop copies on stores that own nothing under the new placement.
	for _, s := range uniqueStores(from.stores, to.stores) {
		if owners[s] {
			continue
		}
		err := s.Remove(name)
		switch {
		case err == nil:
			st.RemovedCopies++
		case errors.Is(err, backend.ErrNotExist):
		default:
			return err
		}
	}
	return nil
}

// copyRange copies name's bytes [lo, hi) from src to dst at the same
// offsets, wiping the destination range first so stale bytes from an
// earlier placement epoch cannot shine through where the source file
// is shorter than the range (a hole).
//
// A source store without the file at all is left alone ENTIRELY — no
// wipe: that state means either the stripe was never written (then
// nonzero stale bytes on dst are impossible, because writing the
// stripe would have materialized the source copy) or an interrupted
// earlier pass already moved the data to dst and removed the source
// copy, in which case wiping would destroy the only copy. Returns the
// number of payload bytes copied.
func copyRange(src, dst backend.Store, name string, lo, hi int64) (int64, error) {
	in, err := src.Open(name, backend.OpenRead)
	if errors.Is(err, backend.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer in.Close()

	out, err := dst.Open(name, backend.OpenCreate)
	if err != nil {
		return 0, err
	}
	defer out.Close()

	// Wipe [lo, min(hi, dstSize)) so holes stay holes.
	dstSize, err := out.Size()
	if err != nil {
		return 0, err
	}
	if wipeHi := min(hi, dstSize); wipeHi > lo {
		zeros := make([]byte, wipeHi-lo)
		if _, err := out.WriteAt(zeros, lo); err != nil {
			return 0, err
		}
	}
	srcSize, err := in.Size()
	if err != nil {
		return 0, err
	}
	end := min(hi, srcSize)
	if end <= lo {
		return 0, nil
	}
	buf := make([]byte, end-lo)
	if err := backend.ReadFull(in, buf, lo); err != nil {
		return 0, err
	}
	if _, err := out.WriteAt(buf, lo); err != nil {
		return 0, err
	}
	if err := out.Sync(); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

// copyNamed replaces dst's dstName with src's srcName, streaming in
// bounded chunks so multi-gigabyte backing files never load into
// memory whole. Truncating the destination to the source size first
// discards any stale longer content.
func copyNamed(src backend.Store, srcName string, dst backend.Store, dstName string) (int64, error) {
	in, err := src.Open(srcName, backend.OpenRead)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	size, err := in.Size()
	if err != nil {
		return 0, err
	}
	out, err := dst.Open(dstName, backend.OpenCreate)
	if err != nil {
		return 0, err
	}
	defer out.Close()
	if err := out.Truncate(size); err != nil {
		return 0, err
	}
	buf := make([]byte, 1<<20)
	var off int64
	for off < size {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if err := backend.ReadFull(in, buf[:n], off); err != nil {
			return off, err
		}
		if _, err := out.WriteAt(buf[:n], off); err != nil {
			return off, err
		}
		off += n
	}
	return size, out.Sync()
}

// storeHas reports whether s holds a copy of name.
func storeHas(s backend.Store, name string) (bool, error) {
	if _, err := s.Stat(name); err != nil {
		if errors.Is(err, backend.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// ensureExists creates name on s if absent, without touching content.
func ensureExists(s backend.Store, name string) error {
	if _, err := s.Stat(name); err == nil {
		return nil
	} else if !errors.Is(err, backend.ErrNotExist) {
		return err
	}
	f, err := s.Open(name, backend.OpenCreate)
	if err != nil {
		return err
	}
	return f.Close()
}

// extendTo grows name on s to at least size bytes (zero-filled).
func extendTo(s backend.Store, name string, size int64) error {
	f, err := s.Open(name, backend.OpenCreate)
	if err != nil {
		return err
	}
	defer f.Close()
	cur, err := f.Size()
	if err != nil {
		return err
	}
	if cur >= size {
		return nil
	}
	return f.Truncate(size)
}

// uniqueStores returns the distinct stores across both views.
func uniqueStores(a, b []backend.Store) []backend.Store {
	seen := make(map[backend.Store]bool)
	var out []backend.Store
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
