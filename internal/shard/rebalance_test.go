package shard_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"lamassu/internal/backend"
	"lamassu/internal/core"
	"lamassu/internal/shard"
	"lamassu/internal/vfs"
)

// populate writes a mix of whole-file and striped files through a
// LamassuFS over the sharded store and returns the plaintext contents.
func populate(t *testing.T, s *shard.Store, seed int64) map[string][]byte {
	t.Helper()
	fs, err := core.New(s, core.Config{Inner: testKey(1), Outer: testKey(2)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	contents := map[string][]byte{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("file-%02d", i)
		// Sizes straddle the stripe unit so some files stay whole and
		// some spread across shards; one file is empty.
		size := i * 2500
		data := make([]byte, size)
		rng.Read(data)
		if err := vfs.WriteAll(fs, name, data); err != nil {
			t.Fatal(err)
		}
		contents[name] = data
	}
	return contents
}

// verify opens a LamassuFS over the sharded store and checks that
// every file decrypts, hash-verifies and matches its content.
func verify(t *testing.T, s *shard.Store, contents map[string][]byte) {
	t.Helper()
	fs, err := core.New(s, core.Config{Inner: testKey(1), Outer: testKey(2)})
	if err != nil {
		t.Fatal(err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(contents) {
		t.Fatalf("List = %d files, want %d (%v)", len(names), len(contents), names)
	}
	for name, want := range contents {
		got, err := vfs.ReadAll(fs, name)
		if err != nil {
			t.Fatalf("%s: read after rebalance: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: content diverged after rebalance", name)
		}
		rep, err := fs.Check(name)
		if err != nil || !rep.Clean() {
			t.Fatalf("%s: audit after rebalance: %+v, %v", name, rep, err)
		}
	}
}

func TestRebalanceGrow(t *testing.T) {
	for _, stripe := range []int64{0, 4096} {
		t.Run(fmt.Sprintf("stripe=%d", stripe), func(t *testing.T) {
			stores, _ := memStores(3)
			old, err := shard.New(stores, shard.Config{StripeBytes: stripe})
			if err != nil {
				t.Fatal(err)
			}
			contents := populate(t, old, 21)

			// Count placement keys before migrating, for the
			// proportionality bound below.
			var totalKeys int64
			names, err := old.List()
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range names {
				if stripe == 0 {
					totalKeys++
					continue
				}
				phys, err := old.Stat(n)
				if err != nil {
					t.Fatal(err)
				}
				totalKeys += (phys + stripe - 1) / stripe
			}

			grownStores := append(append([]backend.Store(nil), stores...), backend.NewMemStore())
			grown, err := shard.New(grownStores, shard.Config{StripeBytes: stripe})
			if err != nil {
				t.Fatal(err)
			}
			st, err := shard.Rebalance(old, grown)
			if err != nil {
				t.Fatal(err)
			}
			if st.Files != len(contents) {
				t.Fatalf("examined %d files, want %d", st.Files, len(contents))
			}
			if st.MovedFiles == 0 {
				t.Fatal("growth moved nothing; new shard would stay empty")
			}
			// Consistent hashing: most data must NOT move. With 3 -> 4
			// shards the fair share is 1/4 of the placement keys
			// (files, or stripes of striped files); allow 2x.
			if st.MovedStripes > totalKeys/2 {
				t.Fatalf("moved %d of %d placement keys; growth should move ~1/4",
					st.MovedStripes, totalKeys)
			}
			verify(t, grown, contents)
		})
	}
}

func TestRebalanceShrink(t *testing.T) {
	stores, _ := memStores(4)
	old, err := shard.New(stores, shard.Config{StripeBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	contents := populate(t, old, 22)

	shrunk, err := shard.New(stores[:3], shard.Config{StripeBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Rebalance(old, shrunk); err != nil {
		t.Fatal(err)
	}
	verify(t, shrunk, contents)
	// The removed shard must hold nothing afterwards.
	leftover, err := stores[3].List()
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Fatalf("removed shard still holds %v", leftover)
	}
}

// Identical placements migrate nothing — the "only keys whose
// placement changed" contract.
func TestRebalanceIdenticalIsNoOp(t *testing.T) {
	stores, _ := memStores(3)
	old, err := shard.New(stores, shard.Config{StripeBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	contents := populate(t, old, 23)
	same, err := shard.New(stores, shard.Config{StripeBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	st, err := shard.Rebalance(old, same)
	if err != nil {
		t.Fatal(err)
	}
	if st.MovedStripes != 0 || st.MovedBytes != 0 || st.RemovedCopies != 0 {
		t.Fatalf("identical rings migrated data: %+v", st)
	}
	verify(t, same, contents)
}

func TestRebalanceStripeMismatch(t *testing.T) {
	a, _ := newShardStore(t, 2, 1024)
	b, _ := newShardStore(t, 2, 2048)
	if _, err := shard.Rebalance(a, b); err == nil {
		t.Fatal("rebalance across stripe units succeeded")
	}
}

// Rebalance is resumable: interrupting it midway (here: stopping a
// copy by rerunning from the half-migrated state) and running it again
// converges to the same verified layout.
func TestRebalanceRerunConverges(t *testing.T) {
	stores, _ := memStores(2)
	old, err := shard.New(stores, shard.Config{StripeBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	contents := populate(t, old, 24)
	grownStores := append(append([]backend.Store(nil), stores...), backend.NewMemStore())
	grown, err := shard.New(grownStores, shard.Config{StripeBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Rebalance(old, grown); err != nil {
		t.Fatal(err)
	}
	// Resuming the SAME migration — the crash-recovery story — must
	// not disturb the moved data: source copies that pass 1 already
	// removed must not be mistaken for holes and wipe the moved bytes.
	if _, err := shard.Rebalance(old, grown); err != nil {
		t.Fatal(err)
	}
	verify(t, grown, contents)
	// And a pass over the settled state moves nothing at all.
	st3, err := shard.Rebalance(grown, grown)
	if err != nil {
		t.Fatal(err)
	}
	if st3.MovedStripes != 0 {
		t.Fatalf("settled pass moved %d stripes", st3.MovedStripes)
	}
	verify(t, grown, contents)
}
