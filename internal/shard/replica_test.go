package shard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"lamassu/internal/backend"
	"lamassu/internal/core"
	"lamassu/internal/faultfs"
	"lamassu/internal/shard"
	slayout "lamassu/internal/shard/layout"
	"lamassu/internal/vfs"
)

// replicatedStores builds an R-way replicated shard store over n
// distinct in-memory stores, each behind a faultfs injector so tests
// can kill shards.
func replicatedStores(t *testing.T, n, r int, stripe int64) (*shard.Store, []*faultfs.Store, []*backend.MemStore) {
	t.Helper()
	stores := make([]backend.Store, n)
	faults := make([]*faultfs.Store, n)
	mems := make([]*backend.MemStore, n)
	for i := range stores {
		mems[i] = backend.NewMemStore()
		faults[i] = faultfs.New(mems[i])
		stores[i] = faults[i]
	}
	s, err := shard.New(stores, shard.Config{StripeBytes: stripe, Replicas: r})
	if err != nil {
		t.Fatal(err)
	}
	return s, faults, mems
}

// readStoreRange reads [lo, hi) of one physical store's copy directly,
// zero-filling past that copy's end (hole semantics).
func readStoreRange(t *testing.T, m backend.Store, name string, lo, hi int64) []byte {
	t.Helper()
	buf := make([]byte, hi-lo)
	f, err := m.Open(name, backend.OpenRead)
	if errors.Is(err, backend.ErrNotExist) {
		return buf
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if n := sz - lo; n > 0 {
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if err := backend.ReadFull(f, buf[:n], lo); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// verifyFullReplication inspects the physical stores directly: every
// owner's copy must hold the authoritative bytes of every range it
// owns, and the home owners must all hold the file. With strict set
// (fresh writes, or a committed migration whose reap ran) files may
// exist ONLY on their owner set; without it, copies stranded on
// ex-owners by a shrinking overwrite are tolerated — the documented
// scrub semantics — but must be capped to the file size so they can
// never contribute a stale byte.
func verifyFullReplication(t *testing.T, s *shard.Store, mems []*backend.MemStore, files map[string][]byte, strict bool) {
	t.Helper()
	lay := s.Layout()
	for name, data := range files {
		size := int64(len(data))
		type span struct{ lo, hi int64 }
		perSlot := make(map[int][]span)
		for _, sl := range lay.Owners(lay.KeyOf(name, 0)) {
			perSlot[sl] = nil // existence: the home owners always hold a copy
		}
		if stripe := lay.StripeBytes(); stripe <= 0 {
			for _, sl := range lay.Owners(lay.KeyOf(name, 0)) {
				perSlot[sl] = append(perSlot[sl], span{0, size})
			}
		} else {
			for lo := int64(0); lo < size; lo += stripe {
				hi := min(lo+stripe, size)
				for _, sl := range lay.Owners(lay.KeyOf(name, lo)) {
					perSlot[sl] = append(perSlot[sl], span{lo, hi})
				}
			}
		}
		for i, m := range mems {
			sz, err := m.Stat(name)
			_, owner := perSlot[i]
			switch {
			case err == nil && !owner && strict:
				t.Fatalf("%s: stray copy on non-owner shard %d", name, i)
			case err == nil && !owner && sz > size:
				t.Fatalf("%s: ex-owner shard %d holds an uncapped %d-byte copy (file is %d bytes)", name, i, sz, size)
			case errors.Is(err, backend.ErrNotExist) && owner:
				t.Fatalf("%s: owner shard %d holds no copy", name, i)
			case err != nil && !errors.Is(err, backend.ErrNotExist):
				t.Fatal(err)
			}
		}
		for sl, spans := range perSlot {
			for _, sp := range spans {
				if sp.hi <= sp.lo {
					continue
				}
				if got := readStoreRange(t, mems[sl], name, sp.lo, sp.hi); !bytes.Equal(got, data[sp.lo:sp.hi]) {
					t.Fatalf("%s: shard %d's copy of [%d,%d) diverges from the written bytes", name, sl, sp.lo, sp.hi)
				}
			}
		}
	}
}

func writeCorpus(t *testing.T, s backend.Store, n int, seed int64) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	files := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("rep-%03d", i)
		data := make([]byte, rng.Intn(5000))
		rng.Read(data)
		files[name] = data
		if err := backend.WriteFile(s, name, data); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return files
}

// Every write fans out to all R owners, whole-file and striped, and the
// physical stores hold byte-identical owner copies — the direct
// inspection the durability claim rests on.
func TestReplicatedWriteFanout(t *testing.T) {
	for _, stripe := range []int64{0, 1024} {
		t.Run(fmt.Sprintf("stripe=%d", stripe), func(t *testing.T) {
			s, _, mems := replicatedStores(t, 4, 2, stripe)
			if got := s.Replicas(); got != 2 {
				t.Fatalf("Replicas = %d, want 2", got)
			}
			files := writeCorpus(t, s, 24, 41)
			// An empty file still replicates its existence.
			files["empty"] = nil
			if err := backend.WriteFile(s, "empty", nil); err != nil {
				t.Fatal(err)
			}
			for name, want := range files {
				got, err := backend.ReadFile(s, name)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("%s: round trip failed: %v", name, err)
				}
			}
			verifyFullReplication(t, s, mems, files, true)
			if rs := s.ReplicationStats(); rs.ReplicaWrites == 0 {
				t.Fatalf("ReplicationStats = %+v, want replica writes > 0", rs)
			}
		})
	}
}

// The acceptance scenario: with R=2 and one shard permanently down, a
// full write/read/remove/truncate workload completes with ZERO
// caller-visible errors and byte-identical readback; the same loss at
// R=1 is a visible failure. Afterwards Scrub restores full
// replication, verified by direct per-store inspection and by
// re-reading everything with each store killed in turn.
func TestReplicatedShardLossAndScrubRepair(t *testing.T) {
	for _, stripe := range []int64{0, 1024} {
		t.Run(fmt.Sprintf("stripe=%d", stripe), func(t *testing.T) {
			s, faults, mems := replicatedStores(t, 3, 2, stripe)
			files := writeCorpus(t, s, 20, 7)

			const victim = 1
			faults[victim].ArmDownAll()

			// Serve reads: every byte must come back identical.
			for name, want := range files {
				got, err := backend.ReadFile(s, name)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("%s: read with shard %d down: %v", name, victim, err)
				}
			}
			// Serve writes: overwrites, new files, a remove, a truncate.
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 6; i++ {
				name := fmt.Sprintf("rep-%03d", i)
				data := make([]byte, 700+rng.Intn(3000))
				rng.Read(data)
				files[name] = data
				if err := backend.WriteFile(s, name, data); err != nil {
					t.Fatalf("overwrite %s with shard down: %v", name, err)
				}
			}
			fresh := make([]byte, 2500)
			rng.Read(fresh)
			files["during-outage"] = fresh
			if err := backend.WriteFile(s, "during-outage", fresh); err != nil {
				t.Fatalf("create with shard down: %v", err)
			}
			if err := s.Remove("rep-010"); err != nil {
				t.Fatalf("remove with shard down: %v", err)
			}
			delete(files, "rep-010")
			h, err := s.Open("rep-011", backend.OpenWrite)
			if err != nil {
				t.Fatalf("open with shard down: %v", err)
			}
			if err := h.Truncate(100); err != nil {
				t.Fatalf("truncate with shard down: %v", err)
			}
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
			files["rep-011"] = files["rep-011"][:min(100, int64(len(files["rep-011"])))]
			if sz := int64(len(files["rep-011"])); sz < 100 {
				files["rep-011"] = append(files["rep-011"], make([]byte, 100-sz)...)
			}
			for name, want := range files {
				got, err := backend.ReadFile(s, name)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("%s: readback during outage: %v", name, err)
				}
			}
			if rs := s.ReplicationStats(); rs.FailoverReads == 0 {
				t.Fatalf("ReplicationStats = %+v, want failover reads > 0", rs)
			}
			if hs := s.Health(); !hs[victim].BreakerOpen {
				t.Fatalf("Health[%d] = %+v, want breaker open after a sustained outage", victim, hs[victim])
			}

			// The shard comes back (with its stale pre-outage data) and a
			// scrub pass restores full replication.
			faults[victim].DisarmDown()
			st, err := s.Scrub(context.Background())
			if err != nil {
				t.Fatalf("Scrub: %v", err)
			}
			if st.Repairs == 0 {
				t.Fatalf("ScrubStats = %+v, want repairs > 0", st)
			}
			if st.Unrepaired != 0 {
				t.Fatalf("ScrubStats = %+v, want nothing unrepaired with all shards live", st)
			}
			verifyFullReplication(t, s, mems, files, false)
			// The journaled remove was finished: no store still holds it.
			for i, m := range mems {
				if _, err := m.Stat("rep-010"); !errors.Is(err, backend.ErrNotExist) {
					t.Fatalf("removed file survives on shard %d: %v", i, err)
				}
			}
			// A second pass over a healthy deployment finds nothing to do.
			st2, err := s.Scrub(context.Background())
			if err != nil {
				t.Fatalf("second Scrub: %v", err)
			}
			if st2.Repairs != 0 || st2.RemovedCopies != 0 || st2.Truncated != 0 || st2.Unrepaired != 0 {
				t.Fatalf("second pass not idle: %+v", st2)
			}
			// Full replication means ANY single store can die and every
			// byte is still served.
			for k := range faults {
				faults[k].ArmDownAll()
				for name, want := range files {
					got, err := backend.ReadFile(s, name)
					if err != nil || !bytes.Equal(got, want) {
						t.Fatalf("%s: read with shard %d down after scrub: %v", name, k, err)
					}
				}
				faults[k].DisarmDown()
			}
		})
	}

	// The R=1 control: the same loss without replication is a visible
	// failure — this is what the R-vs-capacity trade buys.
	t.Run("r1-control", func(t *testing.T) {
		s, faults, _ := replicatedStores(t, 3, 1, 0)
		files := writeCorpus(t, s, 20, 7)
		faults[1].ArmDownAll()
		sawErr := false
		for name := range files {
			if _, err := backend.ReadFile(s, name); err != nil {
				sawErr = true
				break
			}
		}
		if !sawErr {
			t.Fatal("R=1 served every read with a shard permanently down")
		}
	})
}

// The health breaker's lifecycle: consecutive failures open it, the
// deployment keeps serving, and after the shard returns a half-open
// probe closes it without any explicit reset.
func TestBreakerOpensAndCloses(t *testing.T) {
	s, faults, _ := replicatedStores(t, 3, 2, 0)
	files := writeCorpus(t, s, 12, 3)

	const victim = 2
	faults[victim].ArmDownAll()
	for name := range files {
		if _, err := backend.ReadFile(s, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	hs := s.Health()
	if !hs[victim].BreakerOpen || hs[victim].Failures == 0 {
		t.Fatalf("Health[%d] = %+v, want open breaker with failures recorded", victim, hs[victim])
	}
	for i, h := range hs {
		if i != victim && h.BreakerOpen {
			t.Fatalf("Health[%d] = %+v: healthy slot's breaker opened", i, h)
		}
	}

	faults[victim].DisarmDown()
	// The breaker closes on its own via half-open probes: keep the
	// workload running and wait for a probe to land.
	closed := false
	for i := 0; i < 200 && !closed; i++ {
		for name := range files {
			if _, err := backend.ReadFile(s, name); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		closed = !s.Health()[victim].BreakerOpen
	}
	if !closed {
		t.Fatalf("breaker never closed after recovery: %+v", s.Health()[victim])
	}
	if s.Health()[victim].Successes == 0 {
		t.Fatalf("Health[%d] = %+v, want successes after recovery", victim, s.Health()[victim])
	}
}

// Scrub's guard rails: it requires replication, refuses to overlap a
// migration, and refuses to run twice at once.
func TestScrubGuards(t *testing.T) {
	single, _ := newShardStore(t, 3, 0)
	if _, err := single.Scrub(context.Background()); err == nil {
		t.Fatal("Scrub succeeded on a single-copy store")
	}

	s, _, _ := replicatedStores(t, 3, 2, 0)
	writeCorpus(t, s, 6, 5)
	grown := append(append([]backend.Store{}, s.Shards()...), backend.NewMemStore())
	if err := s.BeginMigration(context.Background(), grown, shard.MigrateHooks{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scrub(context.Background()); err == nil {
		t.Fatal("Scrub succeeded during a migration")
	}
	if _, err := s.RunMover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scrub(context.Background()); err != nil {
		t.Fatalf("Scrub after the epoch committed: %v", err)
	}
}

// Online rebalance preserves the replica invariant: after a grow
// commits, every key holds R copies under the NEW ring (verified per
// store), the deployment survives any single shard loss, and a fresh
// R-configured open adopts the bumped epoch.
func TestReplicatedMigrationGrow(t *testing.T) {
	for _, stripe := range []int64{0, 1024} {
		t.Run(fmt.Sprintf("stripe=%d", stripe), func(t *testing.T) {
			s, faults, mems := replicatedStores(t, 3, 2, stripe)
			files := writeCorpus(t, s, 24, 11)

			newMem := backend.NewMemStore()
			newFault := faultfs.New(newMem)
			grown := append(append([]backend.Store{}, s.Shards()...), newFault)
			if err := s.BeginMigration(context.Background(), grown, shard.MigrateHooks{}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.RunMover(context.Background()); err != nil {
				t.Fatal(err)
			}
			if s.Migrating() {
				t.Fatal("migration still active after RunMover")
			}
			if got := s.Replicas(); got != 2 {
				t.Fatalf("Replicas after grow = %d, want 2", got)
			}
			mems = append(mems, newMem)
			faults = append(faults, newFault)
			for name, want := range files {
				got, err := backend.ReadFile(s, name)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("%s: readback after grow: %v", name, err)
				}
			}
			verifyFullReplication(t, s, mems, files, true)
			for k := range faults {
				faults[k].ArmDownAll()
				for name, want := range files {
					got, err := backend.ReadFile(s, name)
					if err != nil || !bytes.Equal(got, want) {
						t.Fatalf("%s: read with shard %d down after grow: %v", name, k, err)
					}
				}
				faults[k].DisarmDown()
			}

			// Reopen: the persisted record carries the factor and epoch.
			stores := make([]backend.Store, len(mems))
			for i := range mems {
				stores[i] = mems[i]
			}
			fresh, err := shard.New(stores, shard.Config{StripeBytes: stripe, Replicas: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.AdoptLayout(nil, 0); err != nil {
				t.Fatalf("AdoptLayout: %v", err)
			}
			if got := fresh.Epoch(); got != 1 {
				t.Fatalf("adopted epoch = %d, want 1", got)
			}
			for name, want := range files {
				got, err := backend.ReadFile(fresh, name)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("%s: readback through adopted store: %v", name, err)
				}
			}
		})
	}
}

// The replication factor is on-disk identity: v1 (pre-replication)
// records adopt as R=1 and stay byte-for-byte v1; opening a deployment
// with the wrong factor, or with fewer stores than its record needs,
// is a typed TopologyError — never a slot-index panic.
func TestAdoptReplicaTopology(t *testing.T) {
	// A single-copy deployment that rebalanced writes v1 record bytes.
	stores, mems := memStores(2)
	s, err := shard.New(stores, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	writeCorpus(t, s, 8, 21)
	grown := append(append([]backend.Store{}, stores...), backend.NewMemStore())
	if err := s.BeginMigration(context.Background(), grown, shard.MigrateHooks{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunMover(context.Background()); err != nil {
		t.Fatal(err)
	}
	raw, err := backend.ReadFile(mems[0], slayout.RecordName)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("lamassu-layout v1\n")) {
		t.Fatalf("single-copy record is not v1: %q", raw[:min(int64(len(raw)), 40)])
	}
	// Adopting it single-copy works; adopting it R=2 is a typed error.
	r1, err := shard.New(grown, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.AdoptLayout(nil, 1); err != nil {
		t.Fatalf("v1 record adopts as R=1: %v", err)
	}
	r2, err := shard.New(grown, shard.Config{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	var te *shard.TopologyError
	if err := r2.AdoptLayout(nil, 0); !errors.As(err, &te) {
		t.Fatalf("adopting a v1 record R=2: %v, want TopologyError", err)
	} else if te.RecordReplicas != 1 || te.Replicas != 2 {
		t.Fatalf("TopologyError = %+v, want 1 vs 2", te)
	}

	// The reverse: an R=2 record refuses a single-copy open.
	repStores, _ := memStores(3)
	rec := slayout.Record{
		Epoch: 1, State: slayout.StateStable,
		Shards: 3, Vnodes: shard.DefaultVnodes, Replicas: 2,
	}
	for _, m := range repStores {
		if err := slayout.WriteRecord(nil, m, rec); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := shard.New(repStores, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	te = nil
	if err := rs.AdoptLayout(nil, 0); !errors.As(err, &te) {
		t.Fatalf("adopting an R=2 record single-copy: %v, want TopologyError", err)
	} else if te.RecordReplicas != 2 || te.Replicas != 1 {
		t.Fatalf("TopologyError = %+v, want 2 vs 1", te)
	}

	// A replicated deployment that never migrated pins its factor at
	// first adoption: a stable epoch-0 v2 record lands on every store,
	// so a later single-copy open is the same typed error — not a
	// silent replication downgrade (there used to be no record at all
	// before the first migration, so nothing caught it).
	pinStores, pinMems := memStores(3)
	pin, err := shard.New(pinStores, shard.Config{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pin.AdoptLayout(nil, 0); err != nil {
		t.Fatal(err)
	}
	for i, m := range pinMems {
		raw, err := backend.ReadFile(m, slayout.RecordName)
		if err != nil {
			t.Fatalf("store %d: factor not pinned: %v", i, err)
		}
		if !bytes.HasPrefix(raw, []byte("lamassu-layout v2\n")) {
			t.Fatalf("store %d: pinned record is not v2: %q", i, raw[:min(int64(len(raw)), 40)])
		}
	}
	again, err := shard.New(pinStores, shard.Config{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := again.AdoptLayout(nil, 0); err != nil {
		t.Fatalf("re-adopting the pinned record at R=2: %v", err)
	}
	if got := again.Epoch(); got != 0 {
		t.Fatalf("pinned record adopted as epoch %d, want 0", got)
	}
	down, err := shard.New(pinStores, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	te = nil
	if err := down.AdoptLayout(nil, 0); !errors.As(err, &te) {
		t.Fatalf("single-copy open of a pinned R=2 deployment: %v, want TopologyError", err)
	} else if te.RecordReplicas != 2 || te.Replicas != 1 {
		t.Fatalf("TopologyError = %+v, want 2 vs 1", te)
	}

	// Regression: a record needing more slots than were mounted is a
	// typed error naming both counts, not an out-of-range index.
	wide := slayout.Record{
		Epoch: 3, State: slayout.StateStable,
		Shards: 5, Vnodes: shard.DefaultVnodes, Replicas: 2,
	}
	fewStores, _ := memStores(3)
	for _, m := range fewStores {
		if err := slayout.WriteRecord(nil, m, wide); err != nil {
			t.Fatal(err)
		}
	}
	few, err := shard.New(fewStores, shard.Config{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	te = nil
	if err := few.AdoptLayout(nil, 0); !errors.As(err, &te) {
		t.Fatalf("adopting a 5-shard record over 3 stores: %v, want TopologyError", err)
	} else if te.RecordShards != 5 || te.Mounted != 3 {
		t.Fatalf("TopologyError = %+v, want 5 vs 3", te)
	}
}

// Config validation: the factor must fit the store list.
func TestReplicaConfigErrors(t *testing.T) {
	stores, _ := memStores(2)
	if _, err := shard.New(stores, shard.Config{Replicas: 3}); err == nil {
		t.Fatal("Replicas=3 over 2 stores succeeded")
	}
	if _, err := shard.New(stores, shard.Config{Replicas: -1}); err == nil {
		t.Fatal("Replicas=-1 succeeded")
	}
	// A replicated migration cannot shrink below the factor.
	s, _, _ := replicatedStores(t, 3, 2, 0)
	if err := s.BeginMigration(context.Background(), s.Shards()[:1], shard.MigrateHooks{}); err == nil {
		t.Fatal("shrink below the replication factor succeeded")
	}
}

// TestReplicaOutageSoak is the nightly kill-one-shard-forever soak
// (gated out of tier-1 by LAMASSU_SOAK): a full encryption engine over
// a replicated sharded store, a random shard killed permanently
// mid-workload, the workload carrying on with zero caller-visible
// errors, then repair-and-verify with direct readback.
func TestReplicaOutageSoak(t *testing.T) {
	if os.Getenv("LAMASSU_SOAK") == "" {
		t.Skip("set LAMASSU_SOAK=1 (nightly CI) to run the replica outage soak")
	}
	iters := 20
	if v := os.Getenv("LAMASSU_SOAK_ITERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			iters = n
		}
	}
	for iter := 0; iter < iters; iter++ {
		rng := rand.New(rand.NewSource(int64(7000 + iter)))
		shards := 3 + rng.Intn(2)
		ss, faults, mems := replicatedStores(t, shards, 2, 1024*int64(1+rng.Intn(3)))
		lfs, err := core.New(ss, core.Config{Inner: testKey(1), Outer: testKey(2), Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[string][]byte)
		writeOne := func(i int) {
			name := fmt.Sprintf("soak-%03d", i%12)
			data := make([]byte, 200+rng.Intn(9000))
			rng.Read(data)
			files[name] = data
			if err := vfs.WriteAll(lfs, name, data); err != nil {
				t.Fatalf("iter %d: write %s: %v", iter, name, err)
			}
		}
		for i := 0; i < 12; i++ {
			writeOne(i)
		}
		victim := rng.Intn(shards)
		faults[victim].ArmDownAll()
		for i := 0; i < 24; i++ {
			writeOne(i)
			name := fmt.Sprintf("soak-%03d", rng.Intn(12))
			got, err := vfs.ReadAll(lfs, name)
			if err != nil || !bytes.Equal(got, files[name]) {
				t.Fatalf("iter %d: read %s with shard %d down: %v", iter, name, victim, err)
			}
		}
		faults[victim].DisarmDown()
		if _, err := ss.Scrub(context.Background()); err != nil {
			t.Fatalf("iter %d: scrub: %v", iter, err)
		}
		_ = mems
		for k := range faults {
			faults[k].ArmDownAll()
			for name, want := range files {
				got, err := vfs.ReadAll(lfs, name)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("iter %d: read %s with shard %d down after scrub: %v", iter, name, k, err)
				}
			}
			faults[k].DisarmDown()
		}
	}
}
