// Package shard stripes a flat backend.Store namespace across N
// independent backend.Store instances — the scaling layer this
// repository adds on top of the paper's shim design. The paper keeps
// the backing-store interface deliberately tiny (positional reads and
// writes on named flat files) precisely so storage behaviours compose;
// sharding is the next composition after the simulated-NFS, fault and
// name-encryption wrappers: once the engine commits in parallel
// (internal/core's worker pool), a single store is the throughput
// ceiling, and striping the encrypted backing files across several
// stores removes it.
//
// Placement lives in the internal/shard/layout subpackage: a
// consistent-hash ring with virtual nodes (layout.Ring) versioned by
// an epoch number (layout.Layout). Each shard contributes Vnodes
// points on a 64-bit hash circle and a key is owned by the first
// point at or clockwise of its hash. The map is O(log vnodes) per
// lookup, entirely off the data path (no placement I/O),
// deterministic across processes, and stable under growth: adding a
// shard moves only the keys the new shard's points capture (≈ K/N of
// them) and never moves a key between two old shards.
//
// Small files place whole-file: every byte of the backing file lives
// on the shard that owns the file name. Large files additionally
// stripe: with Config.StripeBytes > 0, stripe s of a file (its bytes
// [s·stripe, (s+1)·stripe)) lives on the shard owning the derived key
// "name\x00s", so one hot file fans its segment commits across many
// stores. Stripes keep their global offsets inside each shard's
// backing file (a sparse layout), which preserves the engine's
// zero-fill hole semantics.
//
// Store implements backend.Store, so a sharded deployment is invisible
// to internal/core except where it helps: core detects a sharded store
// and (a) carves its commit worker pool into per-shard budgets so one
// hot shard cannot monopolize the encrypt+write fan-out, and (b) fans
// multi-block reads out across the owning shards. Topology change is
// either offline (Rebalance, no mount may be active) or ONLINE
// (BeginMigration/RunMover): the store then serves two placement
// epochs at once — writes route by the new ring and mirror to the old
// owner, reads route to the new owner once the mover has confirmed
// the key and fall back to the old owner until then — while a
// background mover copies only the keys whose owner changed and then
// atomically commits the epoch bump (see migrate.go and the layout
// package's Record).
package shard

import "lamassu/internal/shard/layout"

// DefaultVnodes is the virtual-node count per shard; see
// layout.DefaultVnodes for the sizing rationale.
const DefaultVnodes = layout.DefaultVnodes

// Ring is the consistent-hash placement map, now defined in the
// layout subpackage (the alias keeps the PR 2 surface intact).
type Ring = layout.Ring

// NewRing builds the placement map for the given shard and
// virtual-node counts. vnodes < 1 selects DefaultVnodes.
func NewRing(shards, vnodes int) (*Ring, error) { return layout.NewRing(shards, vnodes) }

// stripeKey derives the placement key of stripe idx of name; see
// layout.StripeKey.
func stripeKey(name string, idx int64) string { return layout.StripeKey(name, idx) }
