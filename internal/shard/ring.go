// Package shard stripes a flat backend.Store namespace across N
// independent backend.Store instances — the scaling layer this
// repository adds on top of the paper's shim design. The paper keeps
// the backing-store interface deliberately tiny (positional reads and
// writes on named flat files) precisely so storage behaviours compose;
// sharding is the next composition after the simulated-NFS, fault and
// name-encryption wrappers: once the engine commits in parallel
// (internal/core's worker pool), a single store is the throughput
// ceiling, and striping the encrypted backing files across several
// stores removes it.
//
// Placement is a consistent-hash ring with virtual nodes (Ring): each
// shard contributes Vnodes points on a 64-bit hash circle and a key is
// owned by the first point at or clockwise of its hash. The map is
// O(log vnodes) per lookup, entirely off the data path (no placement
// I/O), deterministic across processes, and stable under growth:
// adding a shard moves only the keys the new shard's points capture
// (≈ K/N of them) and never moves a key between two old shards.
//
// Small files place whole-file: every byte of the backing file lives
// on the shard that owns the file name. Large files additionally
// stripe: with Config.StripeBytes > 0, stripe s of a file (its bytes
// [s·stripe, (s+1)·stripe)) lives on the shard owning the derived key
// "name\x00s", so one hot file fans its segment commits across many
// stores. Stripes keep their global offsets inside each shard's
// backing file (a sparse layout), which preserves the engine's
// zero-fill hole semantics.
//
// Store implements backend.Store, so a sharded deployment is invisible
// to internal/core except where it helps: core detects a sharded store
// and (a) carves its commit worker pool into per-shard budgets so one
// hot shard cannot monopolize the encrypt+write fan-out, and (b) fans
// multi-block reads out across the owning shards. See Rebalance for
// offline shard addition/removal.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per shard. 64 points per
// shard keeps the ring small (a few KiB even at 32 shards) while
// holding the load imbalance across shards to roughly ±25 % of fair
// share (measured at 8 shards); provision hot-shard capacity with
// that margin, or raise the vnode count to tighten it.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash placement map: Shards() shards,
// each contributing Vnodes() points on a 64-bit circle. Construction
// is deterministic — two rings built with the same (shards, vnodes)
// anywhere, in any process, place every key identically.
type Ring struct {
	shards int
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the placement map for the given shard and
// virtual-node counts. vnodes < 1 selects DefaultVnodes.
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, errors.New("shard: ring needs at least one shard")
	}
	if vnodes < 1 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		shards: shards,
		vnodes: vnodes,
		points: make([]ringPoint, 0, shards*vnodes),
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := hashKey(fmt.Sprintf("shard-%d-vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Colliding points order by shard so ties break identically
		// everywhere.
		return a.shard < b.shard
	})
	return r, nil
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Vnodes returns the virtual-node count per shard.
func (r *Ring) Vnodes() int { return r.vnodes }

// Lookup returns the shard owning key: the shard of the first ring
// point at or clockwise of the key's hash.
func (r *Ring) Lookup(key string) int {
	if r.shards == 1 {
		return 0
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard
}

// hashKey maps a key onto the circle: FNV-1a for stable, seedless
// absorption (placement must agree between the process that wrote a
// file and every later process that reads it) followed by a
// splitmix64 finalizer — raw FNV of near-identical keys ("shard-0-
// vnode-1", "shard-0-vnode-2", …) clusters badly on the circle, and
// the finalizer's avalanche spreads the points to the ~±25 % load
// imbalance of an ideal ring at the default vnode count.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (public-domain constants).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
