package shard

import (
	"fmt"
	"testing"
)

// Placement is part of the on-disk format of a sharded deployment: a
// ring built from the same (shards, vnodes) must place every key
// identically in every process, forever. The golden values pin the
// hash construction — if this test fails, the change breaks every
// existing sharded deployment and needs a Rebalance story, not a
// golden update.
func TestRingGoldenPlacement(t *testing.T) {
	r, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]int{
		"a":                        1,
		"alpha":                    2,
		"file-001":                 3,
		"file-002":                 3,
		"vm/disk0.img":             1,
		"some/deep/path/block.dat": 2,
		"zeta":                     4,
		"f\x001":                   0, // stripe keys (name NUL index)
		"f\x0042":                  2,
	}
	for k, want := range golden {
		if got := r.Lookup(k); got != want {
			t.Errorf("Lookup(%q) = %d, want %d", k, got, want)
		}
	}
}

// Replica placement is equally part of the on-disk format: the next R
// distinct shards clockwise from the owner hold the copies, so a ring
// built from the same parameters must produce the same owner LIST for
// every key, forever. Slot 0 of every list is the Lookup owner — the
// replicated layout is a strict extension of the single-copy one, so
// R=1 deployments are untouched by the replication code. Like the
// golden above, a failure here means broken deployments, not a stale
// test.
func TestRingGoldenOwners(t *testing.T) {
	r, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]struct{ r2, r3 []int }{
		"a":                        {[]int{1, 4}, []int{1, 4, 2}},
		"alpha":                    {[]int{2, 0}, []int{2, 0, 4}},
		"file-001":                 {[]int{3, 4}, []int{3, 4, 1}},
		"file-002":                 {[]int{3, 0}, []int{3, 0, 1}},
		"vm/disk0.img":             {[]int{1, 0}, []int{1, 0, 3}},
		"some/deep/path/block.dat": {[]int{2, 3}, []int{2, 3, 1}},
		"zeta":                     {[]int{4, 1}, []int{4, 1, 0}},
		"f\x001":                   {[]int{0, 4}, []int{0, 4, 3}},
		"f\x0042":                  {[]int{2, 3}, []int{2, 3, 4}},
	}
	for k, want := range golden {
		if got := r.LookupN(k, 2); !equalInts(got, want.r2) {
			t.Errorf("LookupN(%q, 2) = %v, want %v", k, got, want.r2)
		}
		if got := r.LookupN(k, 3); !equalInts(got, want.r3) {
			t.Errorf("LookupN(%q, 3) = %v, want %v", k, got, want.r3)
		}
		if got := r.LookupN(k, 1); len(got) != 1 || got[0] != r.Lookup(k) {
			t.Errorf("LookupN(%q, 1) = %v, want [%d]", k, got, r.Lookup(k))
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Two rings with the same parameters agree on every key (the in-
// process half of determinism; the golden test covers cross-process).
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing(7, 48)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(7, 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("object-%d", i)
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("rings with identical parameters disagree on %q", k)
		}
	}
}

// At the default vnode count the load imbalance across shards stays
// within a factor of ~2 of fair share (measured ±25%; the factor-2
// bound leaves headroom for key-set variation).
func TestRingDistribution(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		r, err := NewRing(shards, 0) // 0 selects DefaultVnodes
		if err != nil {
			t.Fatal(err)
		}
		if r.Vnodes() != DefaultVnodes {
			t.Fatalf("Vnodes = %d, want default %d", r.Vnodes(), DefaultVnodes)
		}
		const keys = 10000
		counts := make([]int, shards)
		for i := 0; i < keys; i++ {
			counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
		}
		fair := keys / shards
		for s, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Errorf("shards=%d: shard %d holds %d keys (fair %d); distribution too skewed: %v",
					shards, s, c, fair, counts)
			}
		}
	}
}

// The consistent-hashing contract: growing N shards to N+1 moves keys
// only onto the new shard, and only about 1/(N+1) of them.
func TestRingGrowthMovesOnlyToNewShard(t *testing.T) {
	const keys = 8192
	for n := 1; n <= 8; n++ {
		old, err := NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		grown, err := NewRing(n+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("key-%d", i)
			o, g := old.Lookup(k), grown.Lookup(k)
			if o != g {
				moved++
				if g != n {
					t.Fatalf("n=%d: key %q moved %d -> %d, not to the new shard %d", n, k, o, g, n)
				}
			}
		}
		fair := keys / (n + 1)
		if moved > fair*5/2 {
			t.Errorf("n=%d: %d keys moved, more than 2.5x the fair share %d", n, moved, fair)
		}
		if moved == 0 {
			t.Errorf("n=%d: no keys moved to the new shard at all", n)
		}
	}
}

func TestRingSingleShard(t *testing.T) {
	r, err := NewRing(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "a", "anything at all"} {
		if r.Lookup(k) != 0 {
			t.Fatalf("single-shard ring sent %q to shard %d", k, r.Lookup(k))
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(0, 8); err == nil {
		t.Fatal("NewRing(0, 8) succeeded")
	}
	if _, err := NewRing(-1, 8); err == nil {
		t.Fatal("NewRing(-1, 8) succeeded")
	}
}
