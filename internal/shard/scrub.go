package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"lamassu/internal/backend"
	"lamassu/internal/shard/layout"
)

// scrubState is the lock table a running scrub pass shares with the
// live write path: replicated writers take the key lock of every range
// they write, truncate and remove take the file lock, and the scrubber
// holds both around each repair copy — so a repair can never interleave
// with a live mutation of the same bytes. Lock order matches the
// migration's: fileLock before keyLock, never the reverse.
//
// Writes already in flight when the pass installs the table are not
// excluded; a pass started over an active workload can race them on its
// first keys, and a second pass converges. Scrub after an outage, not
// during a write burst, for an exact report.
type scrubState struct {
	mu        sync.Mutex
	keyLocks  map[string]*sync.Mutex
	fileLocks map[string]*sync.Mutex
}

func newScrubState() *scrubState {
	return &scrubState{
		keyLocks:  make(map[string]*sync.Mutex),
		fileLocks: make(map[string]*sync.Mutex),
	}
}

func (sc *scrubState) keyLock(key string) *sync.Mutex {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	l := sc.keyLocks[key]
	if l == nil {
		l = &sync.Mutex{}
		sc.keyLocks[key] = l
	}
	return l
}

func (sc *scrubState) fileLock(name string) *sync.Mutex {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	l := sc.fileLocks[name]
	if l == nil {
		l = &sync.Mutex{}
		sc.fileLocks[name] = l
	}
	return l
}

// ScrubStats summarizes a Scrub pass.
type ScrubStats struct {
	// Files is the number of files examined.
	Files int
	// Keys is the number of placement keys whose replica copies were
	// byte-compared.
	Keys int64
	// Repairs counts replica copies re-created or re-copied from a
	// verified source; RepairedBytes totals the payload moved doing it.
	Repairs       int64
	RepairedBytes int64
	// RemovedCopies counts copies reaped: survivors of a journaled
	// remove, and copies stranded where no current owner vouches for the
	// name.
	RemovedCopies int
	// Truncated counts oversize copies capped back to the reference
	// size (survivors of a truncate that missed their shard).
	Truncated int
	// Unrepaired counts damage the pass could see but not fix — the
	// target shard was unreachable. Journal entries for it are kept;
	// scrub again once the shard is back.
	Unrepaired int64
}

// Scrub walks every file and verifies that all replica copies of every
// placement key hold the same bytes, re-copying missing or divergent
// replicas from a verified source, finishing removes and truncates that
// missed a shard (per the damage journal), and reaping copies nothing
// vouches for. It is the repair half of replication: failover keeps a
// deployment serving through a shard loss, Scrub restores full
// redundancy afterwards.
//
// The pass always byte-compares — the journal only picks sources and
// breaks remove/truncate ties — so it converges even after a crash
// erased the journal, on presence-wins semantics (a journaled-but-lost
// remove can resurrect a name; see the journal's comment). Scrub
// honors ctx between keys: a canceled pass has repaired a prefix and
// rerunning converges. It refuses to run during a migration (and
// BeginMigration refuses while a scrub is running).
func (s *Store) Scrub(ctx context.Context) (ScrubStats, error) {
	var st ScrubStats
	sc := newScrubState()
	s.migMu.Lock()
	t := s.topo.Load()
	if !t.replicated() {
		s.migMu.Unlock()
		return st, errors.New("shard: scrub requires a replicated store")
	}
	if t.mig != nil {
		s.migMu.Unlock()
		return st, errors.New("shard: scrub during a migration; run it after the epoch commits")
	}
	if !s.scrub.CompareAndSwap(nil, sc) {
		s.migMu.Unlock()
		return st, errors.New("shard: scrub already running")
	}
	s.migMu.Unlock()
	defer s.scrub.Store(nil)

	// The union of every store's raw namespace — tolerating unreachable
	// stores, whose copies are exactly what a later pass repairs.
	seen := make(map[string]bool)
	var names []string
	listedAll := true
	for _, u := range t.uniq {
		ns, err := u.store.List()
		if err != nil {
			if backend.CtxErr(ctx) != nil {
				return st, err
			}
			s.slotFailed(t, u.shard)
			listedAll = false
			st.Unrepaired++
			continue
		}
		t.health[u.shard].ok()
		for _, n := range ns {
			if layout.IsReserved(n) || seen[n] {
				continue
			}
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := backend.CtxErr(ctx); err != nil {
			return st, err
		}
		if err := s.scrubFile(ctx, t, sc, name, &st); err != nil {
			return st, fmt.Errorf("shard: scrubbing %q: %w", name, err)
		}
	}
	// Journal entries can reference names no live store lists anymore
	// (e.g. a remove that missed a now-unreachable shard, then every
	// surviving copy was removed). Walk those too, so the stranded
	// copies are reaped when their shard returns.
	for _, name := range s.damage.staleNames(seen) {
		if err := backend.CtxErr(ctx); err != nil {
			return st, err
		}
		if err := s.scrubFile(ctx, t, sc, name, &st); err != nil {
			return st, fmt.Errorf("shard: scrubbing %q: %w", name, err)
		}
	}
	if listedAll && st.Unrepaired == 0 {
		s.damage.resetOverflow()
	}
	return st, nil
}

// scrubCopy is one physical store's view of a file during a scrub.
type scrubCopy struct {
	present   bool
	reachable bool
	size      int64
}

// scrubFile settles one file: remove/size tie-breakers first, then a
// per-key byte compare and repair, then size capping and anchoring.
// The file lock is held throughout (excluding live truncate/remove and
// a second scrubber), per-key copies additionally take the key lock
// (excluding live writes of that key).
func (s *Store) scrubFile(ctx context.Context, t *topology, sc *scrubState, name string, st *ScrubStats) error {
	fl := sc.fileLock(name)
	fl.Lock()
	defer fl.Unlock()
	st.Files++

	info := make(map[backend.Store]*scrubCopy, len(t.uniq))
	for _, u := range t.uniq {
		ci := &scrubCopy{}
		info[u.store] = ci
		sz, err := u.store.Stat(name)
		switch {
		case err == nil:
			ci.present, ci.reachable, ci.size = true, true, sz
		case errors.Is(err, backend.ErrNotExist):
			ci.reachable = true
		default:
			if backend.CtxErr(ctx) != nil {
				return err
			}
			s.slotFailed(t, u.shard)
			st.Unrepaired++
		}
	}

	// A journaled remove is authoritative — unless the name reappeared
	// on a store the remove DID reach, which means it was re-created and
	// the new incarnation supersedes the journal entry.
	if rm := s.damage.get(s.damage.removes, name); len(rm) > 0 {
		survivors := make(map[backend.Store]bool, len(rm))
		for sl := range rm {
			survivors[t.stores[sl]] = true
		}
		recreated := false
		for stg, ci := range info {
			if ci.present && !survivors[stg] {
				recreated = true
				break
			}
		}
		if !recreated {
			clean := true
			for _, u := range t.uniq {
				if !info[u.store].present {
					continue
				}
				if err := u.store.Remove(name); err != nil && !errors.Is(err, backend.ErrNotExist) {
					if backend.CtxErr(ctx) != nil {
						return err
					}
					s.slotFailed(t, u.shard)
					st.Unrepaired++
					clean = false
					continue
				}
				info[u.store].present = false
				st.RemovedCopies++
				s.noteScrubRepair()
			}
			if clean {
				s.damage.clearName(name)
			}
			return nil
		}
		s.damage.clear(s.damage.removes, name)
	}

	// Existence: any live home-key owner vouches. None holding it (and
	// none unreachable) means every copy is a stray from an older
	// placement or a finished remove — reap them. With a home owner
	// unreachable the file's fate cannot be judged; leave it alone.
	homeOwners := t.dedupSlots(t.lay.Owners(t.lay.KeyOf(name, 0)))
	homePresent, homeUnknown := false, false
	for _, sl := range homeOwners {
		ci := info[t.stores[sl]]
		if !ci.reachable {
			homeUnknown = true
		} else if ci.present {
			homePresent = true
		}
	}
	if !homePresent {
		if homeUnknown {
			return nil
		}
		clean := true
		for _, u := range t.uniq {
			if !info[u.store].present {
				continue
			}
			switch err := u.store.Remove(name); {
			case err == nil:
				st.RemovedCopies++
				s.noteScrubRepair()
			case errors.Is(err, backend.ErrNotExist):
			default:
				if backend.CtxErr(ctx) != nil {
					return err
				}
				s.slotFailed(t, u.shard)
				st.Unrepaired++
				clean = false
			}
		}
		if clean {
			s.damage.clearName(name)
		}
		return nil
	}
	// Replicate existence itself: every live home owner gets a copy.
	for _, sl := range homeOwners {
		ci := info[t.stores[sl]]
		if !ci.reachable || ci.present {
			continue
		}
		if err := ensureExists(t.stores[sl], name); err != nil {
			if backend.CtxErr(ctx) != nil {
				return err
			}
			s.slotFailed(t, sl)
			st.Unrepaired++
			continue
		}
		ci.present = true
		st.Repairs++
		s.noteScrubRepair()
	}

	// Reference size: the maximum over holders NOT journaled as
	// size-suspect (their copy may exceed the true size — a truncate
	// missed them). If every holder is suspect, or the journal
	// overflowed, fall back to the plain maximum: presence wins.
	suspectAll := s.damage.suspectAll()
	sizeSuspect := s.damage.get(s.damage.sizes, name)
	suspectStores := make(map[backend.Store]bool, len(sizeSuspect))
	for sl := range sizeSuspect {
		suspectStores[t.stores[sl]] = true
	}
	var refSize int64
	haveRef := false
	for _, u := range t.uniq {
		ci := info[u.store]
		if !ci.present || !ci.reachable {
			continue
		}
		if !suspectAll && suspectStores[u.store] {
			continue
		}
		if !haveRef || ci.size > refSize {
			refSize, haveRef = ci.size, true
		}
	}
	if !haveRef {
		for _, u := range t.uniq {
			if ci := info[u.store]; ci.present && ci.reachable && ci.size > refSize {
				refSize = ci.size
			}
		}
	}

	// Per-key compare and repair.
	if stripe := t.lay.StripeBytes(); stripe <= 0 {
		if err := s.scrubKey(ctx, t, sc, name, name, 0, refSize, info, st); err != nil {
			return err
		}
	} else {
		nStripes := (refSize + stripe - 1) / stripe
		for i := int64(0); i < nStripes; i++ {
			if err := backend.CtxErr(ctx); err != nil {
				return err
			}
			lo := i * stripe
			hi := min(lo+stripe, refSize)
			if err := s.scrubKey(ctx, t, sc, name, layout.StripeKey(name, i), lo, hi, info, st); err != nil {
				return err
			}
		}
	}

	// Cap oversize copies (missed truncates) and anchor the global size
	// on every owner of the final byte, then settle the size journal.
	sizesClean := true
	for _, u := range t.uniq {
		ci := info[u.store]
		if !ci.present || !ci.reachable || ci.size <= refSize {
			continue
		}
		if err := capSize(u.store, name, refSize); err != nil {
			if backend.CtxErr(ctx) != nil {
				return err
			}
			s.slotFailed(t, u.shard)
			st.Unrepaired++
			sizesClean = false
			continue
		}
		st.Truncated++
		s.noteScrubRepair()
	}
	if refSize > 0 {
		for _, sl := range t.dedupSlots(t.lay.Owners(t.lay.KeyOf(name, refSize-1))) {
			if !info[t.stores[sl]].reachable {
				sizesClean = false
				continue
			}
			if err := extendTo(t.stores[sl], name, refSize); err != nil {
				if backend.CtxErr(ctx) != nil {
					return err
				}
				s.slotFailed(t, sl)
				st.Unrepaired++
				sizesClean = false
			}
		}
	}
	for sl := range sizeSuspect {
		if !info[t.stores[sl]].reachable {
			sizesClean = false
		}
	}
	if sizesClean {
		s.damage.clear(s.damage.sizes, name)
	}
	return nil
}

// scrubKey verifies one placement key's replica set: a verified source
// (preferring owners the journal does NOT implicate) is byte-compared
// against every other owner's copy, and divergent or missing copies are
// re-copied from it under the key lock.
func (s *Store) scrubKey(ctx context.Context, t *topology, sc *scrubState, name, key string, lo, hi int64, info map[backend.Store]*scrubCopy, st *ScrubStats) error {
	owners := t.dedupSlots(t.lay.Owners(key))
	if len(owners) < 2 {
		return nil
	}
	st.Keys++
	kl := sc.keyLock(key)
	kl.Lock()
	defer kl.Unlock()

	damaged := s.damage.get(s.damage.keys, key)
	suspectAll := s.damage.suspectAll()
	src := -1
	for _, sl := range owners {
		ci := info[t.stores[sl]]
		if !ci.present || !ci.reachable {
			continue
		}
		if !suspectAll && !damaged[sl] {
			src = sl
			break
		}
	}
	if src < 0 {
		// Every reachable holder is implicated (or the journal is
		// useless); the primary-most copy is the best remaining guess.
		for _, sl := range owners {
			if ci := info[t.stores[sl]]; ci.present && ci.reachable {
				src = sl
				break
			}
		}
	}
	if src < 0 {
		st.Unrepaired++
		return nil
	}
	srcStore := t.stores[src]
	clean := true
	for _, sl := range owners {
		dst := t.stores[sl]
		if dst == srcStore {
			continue
		}
		ci := info[dst]
		if !ci.reachable {
			st.Unrepaired++
			clean = false
			continue
		}
		if hi <= lo {
			continue
		}
		equal, err := compareRange(srcStore, dst, name, lo, hi)
		if err != nil {
			if backend.CtxErr(ctx) != nil {
				return err
			}
			s.slotFailed(t, sl)
			st.Unrepaired++
			clean = false
			continue
		}
		if equal {
			t.health[sl].ok()
			continue
		}
		var n int64
		if t.lay.StripeBytes() <= 0 {
			n, err = copyNamed(srcStore, name, dst, name)
		} else {
			n, err = copyRange(srcStore, dst, name, lo, hi)
		}
		if err != nil {
			if backend.CtxErr(ctx) != nil {
				return err
			}
			s.slotFailed(t, sl)
			st.Unrepaired++
			clean = false
			continue
		}
		ci.present = true
		t.health[sl].ok()
		st.Repairs++
		st.RepairedBytes += n
		s.noteScrubRepair()
	}
	if clean {
		s.damage.clear(s.damage.keys, key)
	}
	return nil
}

// compareRange reports whether src's and dst's copies of name hold the
// same bytes in [lo, hi), streaming in bounded chunks and treating a
// missing file or a short copy as zeros — exactly how reads resolve
// holes.
func compareRange(src, dst backend.Store, name string, lo, hi int64) (bool, error) {
	sf, err := src.Open(name, backend.OpenRead)
	if err != nil && !errors.Is(err, backend.ErrNotExist) {
		return false, err
	}
	if sf != nil {
		defer sf.Close()
	}
	df, err := dst.Open(name, backend.OpenRead)
	if err != nil && !errors.Is(err, backend.ErrNotExist) {
		return false, err
	}
	if df != nil {
		defer df.Close()
	}
	var ssz, dsz int64
	if sf != nil {
		if ssz, err = sf.Size(); err != nil {
			return false, err
		}
	}
	if df != nil {
		if dsz, err = df.Size(); err != nil {
			return false, err
		}
	}
	n := hi - lo
	if n > 1<<20 {
		n = 1 << 20
	}
	a := make([]byte, n)
	b := make([]byte, n)
	for pos := lo; pos < hi; {
		c := min(int64(len(a)), hi-pos)
		if err := readZeroFill(sf, a[:c], pos, ssz); err != nil {
			return false, err
		}
		if err := readZeroFill(df, b[:c], pos, dsz); err != nil {
			return false, err
		}
		if !bytes.Equal(a[:c], b[:c]) {
			return false, nil
		}
		pos += c
	}
	return true, nil
}

// readZeroFill reads buf from f at off, zero-filling past size (and the
// whole buffer when f is nil — a missing copy reads as a hole).
func readZeroFill(f backend.File, buf []byte, off, size int64) error {
	n := size - off
	if f == nil || n <= 0 {
		clear(buf)
		return nil
	}
	if n > int64(len(buf)) {
		n = int64(len(buf))
	}
	if err := backend.ReadFull(f, buf[:n], off); err != nil {
		return err
	}
	clear(buf[n:])
	return nil
}

// capSize truncates a store's copy of name down to size (finishing a
// truncate that missed the shard).
func capSize(stg backend.Store, name string, size int64) error {
	h, err := stg.Open(name, backend.OpenWrite)
	if err != nil {
		return err
	}
	defer h.Close()
	if err := h.Truncate(size); err != nil {
		return err
	}
	return h.Sync()
}
