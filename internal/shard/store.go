package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"

	"lamassu/internal/backend"
)

// Config tunes a sharded Store.
type Config struct {
	// Vnodes is the virtual-node count per shard on the placement
	// ring. 0 selects DefaultVnodes. Changing it changes placement, so
	// it must match between the process that wrote a store and every
	// process that opens it (see Rebalance to migrate).
	Vnodes int
	// StripeBytes, when > 0, additionally stripes each backing file:
	// its bytes [s·StripeBytes, (s+1)·StripeBytes) live on the shard
	// owning the derived key "name\x00s". 0 places every file whole on
	// the shard owning its name. Stripe boundaries should align with
	// the layout's segment size so one multiphase commit lands on one
	// shard.
	StripeBytes int64
}

// IOStats is a snapshot of one shard's I/O counters.
type IOStats struct {
	// Shard is the shard index in the stores slice.
	Shard int
	// Reads / Writes / Syncs count backend calls routed to the shard.
	Reads, Writes, Syncs int64
	// BytesRead / BytesWritten total the payloads moved.
	BytesRead, BytesWritten int64
}

// shardCounters is the mutable form of IOStats.
type shardCounters struct {
	reads, writes, syncs    atomic.Int64
	bytesRead, bytesWritten atomic.Int64
}

// Store stripes a flat file namespace across several backend.Store
// instances via a consistent-hash Ring. It implements backend.Store;
// see the package comment for placement semantics.
//
// The same underlying store may appear in several slots: internal/core
// and the public Options use that to carve N *logical* shards (routing
// plus per-shard worker budgets) out of one physical store, which is
// byte-for-byte identical to the unsharded layout because every stripe
// keeps its global offset and file name.
type Store struct {
	stores []backend.Store
	ring   *Ring
	stripe int64
	stats  []shardCounters
	// uniq lists the distinct underlying stores (first-occurrence
	// order) with a representative slot index each. Namespace
	// operations iterate it instead of stores, so carving N logical
	// shards out of one physical store costs one backend call, not N.
	uniq []uniqueStore
}

// uniqueStore pairs a distinct underlying store with the lowest slot
// index it backs.
type uniqueStore struct {
	store backend.Store
	shard int
}

// New returns a sharded Store over the given backends. The order of
// stores is part of the placement contract: reopening a sharded
// deployment with the stores permuted scatters every lookup.
func New(stores []backend.Store, cfg Config) (*Store, error) {
	if len(stores) == 0 {
		return nil, errors.New("shard: at least one backend store is required")
	}
	for i, s := range stores {
		if s == nil {
			return nil, fmt.Errorf("shard: store %d is nil", i)
		}
	}
	if cfg.StripeBytes < 0 {
		return nil, errors.New("shard: stripe size must be >= 0")
	}
	ring, err := NewRing(len(stores), cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	var uniq []uniqueStore
	seen := make(map[backend.Store]bool, len(stores))
	for i, st := range stores {
		if !seen[st] {
			seen[st] = true
			uniq = append(uniq, uniqueStore{store: st, shard: i})
		}
	}
	return &Store{
		stores: append([]backend.Store(nil), stores...),
		ring:   ring,
		stripe: cfg.StripeBytes,
		stats:  make([]shardCounters, len(stores)),
		uniq:   uniq,
	}, nil
}

// NumShards returns the number of shards. Together with ShardOf it is
// the seam internal/core uses to carve per-shard worker budgets.
func (s *Store) NumShards() int { return len(s.stores) }

// Ring returns the placement map.
func (s *Store) Ring() *Ring { return s.ring }

// StripeBytes returns the stripe unit (0 = whole-file placement).
func (s *Store) StripeBytes() int64 { return s.stripe }

// Shards returns the underlying backend stores, in placement order.
func (s *Store) Shards() []backend.Store {
	return append([]backend.Store(nil), s.stores...)
}

// ShardOf returns the shard owning byte off of the named file. It is
// pure ring arithmetic — no I/O, O(log vnodes) — so callers may use it
// on their hot paths to route work before touching data.
func (s *Store) ShardOf(name string, off int64) int {
	if s.stripe <= 0 {
		return s.ring.Lookup(name)
	}
	return s.ring.Lookup(stripeKey(name, off/s.stripe))
}

// homeShard returns the shard that defines a file's existence: the
// owner of its first byte (equivalently, of stripe 0).
func (s *Store) homeShard(name string) int { return s.ShardOf(name, 0) }

// stripeKey derives the placement key of stripe idx of name. The NUL
// separator cannot occur in OS file names, so derived keys never
// collide with whole-file keys of other files.
func stripeKey(name string, idx int64) string {
	return name + "\x00" + strconv.FormatInt(idx, 10)
}

// Stats returns a snapshot of every shard's I/O counters.
func (s *Store) Stats() []IOStats {
	out := make([]IOStats, len(s.stats))
	for i := range s.stats {
		c := &s.stats[i]
		out[i] = IOStats{
			Shard:        i,
			Reads:        c.reads.Load(),
			Writes:       c.writes.Load(),
			Syncs:        c.syncs.Load(),
			BytesRead:    c.bytesRead.Load(),
			BytesWritten: c.bytesWritten.Load(),
		}
	}
	return out
}

// Open implements backend.Store. Existence is decided by the home
// shard; stripe files on other shards are created lazily by writes.
func (s *Store) Open(name string, flag backend.OpenFlag) (backend.File, error) {
	return s.OpenCtx(nil, name, flag)
}

// OpenCtx implements backend.StoreCtx: ctx reaches the home shard's
// open here and every lazy stripe open through the handle's *Ctx
// methods later.
func (s *Store) OpenCtx(ctx context.Context, name string, flag backend.OpenFlag) (backend.File, error) {
	home := s.homeShard(name)
	hf, err := backend.OpenCtx(ctx, s.stores[home], name, flag)
	if err != nil {
		return nil, err
	}
	f := &file{
		store:   s,
		name:    name,
		flag:    flag,
		homeIdx: home,
		files:   make(map[int]backend.File, 1),
	}
	f.files[home] = hf
	return f, nil
}

// RemoveCtx implements backend.StoreCtx, checking ctx between the
// per-shard removes.
func (s *Store) RemoveCtx(ctx context.Context, name string) error {
	homeStore := s.stores[s.homeShard(name)]
	if err := backend.RemoveCtx(ctx, homeStore, name); err != nil {
		return err
	}
	for _, u := range s.uniq {
		if u.store == homeStore {
			continue
		}
		if err := backend.RemoveCtx(ctx, u.store, name); err != nil && !errors.Is(err, backend.ErrNotExist) {
			return err
		}
	}
	return nil
}

// ListCtx implements backend.StoreCtx.
func (s *Store) ListCtx(ctx context.Context) ([]string, error) {
	if err := backend.CtxErr(ctx); err != nil {
		return nil, err
	}
	return s.List()
}

// StatCtx implements backend.StoreCtx.
func (s *Store) StatCtx(ctx context.Context, name string) (int64, error) {
	if err := backend.CtxErr(ctx); err != nil {
		return 0, err
	}
	return s.Stat(name)
}

// Remove implements backend.Store: the file is removed from every
// shard holding a stripe of it. The home shard decides existence.
func (s *Store) Remove(name string) error { return s.RemoveCtx(nil, name) }

// Rename implements backend.Store. Renaming changes every placement
// key, so in general the data must move; when the whole file stays on
// one shard the rename is delegated (and stays atomic), otherwise the
// content is copied to its new placement and the old name removed —
// NOT atomic across shards, which callers of a sharded store must
// tolerate (none of the engine's consistency paths rename).
func (s *Store) Rename(oldName, newName string) error {
	oldHome := s.homeShard(oldName)
	newHome := s.homeShard(newName)
	if s.stripe <= 0 && s.stores[oldHome] == s.stores[newHome] {
		if err := s.stores[oldHome].Rename(oldName, newName); err != nil {
			return err
		}
		// The name may still linger on other shards (e.g. after a ring
		// change); drop stale copies so List stays clean.
		for _, u := range s.uniq {
			if u.store == s.stores[oldHome] {
				continue
			}
			_ = u.store.Remove(oldName)
		}
		return nil
	}
	if _, err := copyNamed(s, oldName, s, newName); err != nil {
		if errors.Is(err, backend.ErrNotExist) {
			return fmt.Errorf("rename %q: %w", oldName, backend.ErrNotExist)
		}
		return err
	}
	return s.Remove(oldName)
}

// List implements backend.Store: the union of the shards' namespaces,
// filtered to names whose home shard holds them (a stripe file whose
// home copy is gone is garbage, not a file).
func (s *Store) List() ([]string, error) {
	seen := make(map[string]bool)
	perStore := make(map[backend.Store]map[string]bool, len(s.uniq))
	for _, u := range s.uniq {
		names, err := u.store.List()
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool, len(names))
		for _, n := range names {
			set[n] = true
			seen[n] = true
		}
		perStore[u.store] = set
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		if perStore[s.stores[s.homeShard(n)]][n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stat implements backend.Store. A striped file's physical size is
// the maximum across shards: every write extends the shard owning the
// written range, so the shard owning the final stripe always reaches
// the true size.
func (s *Store) Stat(name string) (int64, error) {
	homeStore := s.stores[s.homeShard(name)]
	size, err := homeStore.Stat(name)
	if err != nil {
		return 0, err
	}
	for _, u := range s.uniq {
		if u.store == homeStore {
			continue
		}
		sz, err := u.store.Stat(name)
		if err != nil {
			if errors.Is(err, backend.ErrNotExist) {
				continue
			}
			return 0, err
		}
		if sz > size {
			size = sz
		}
	}
	return size, nil
}

func (s *Store) countRead(shard, n int) {
	c := &s.stats[shard]
	c.reads.Add(1)
	c.bytesRead.Add(int64(n))
}

func (s *Store) countWrite(shard, n int) {
	c := &s.stats[shard]
	c.writes.Add(1)
	c.bytesWritten.Add(int64(n))
}

func (s *Store) countSync(shard int) { s.stats[shard].syncs.Add(1) }
