package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lamassu/internal/backend"
	"lamassu/internal/metrics"
	"lamassu/internal/shard/layout"
)

// Config tunes a sharded Store.
type Config struct {
	// Vnodes is the virtual-node count per shard on the placement
	// ring. 0 selects DefaultVnodes. Changing it changes placement, so
	// it must match between the process that wrote a store and every
	// process that opens it (see Rebalance to migrate).
	Vnodes int
	// StripeBytes, when > 0, additionally stripes each backing file:
	// its bytes [s·StripeBytes, (s+1)·StripeBytes) live on the shard
	// owning the derived key "name\x00s". 0 places every file whole on
	// the shard owning its name. Stripe boundaries should align with
	// the layout's segment size so one multiphase commit lands on one
	// shard.
	StripeBytes int64
	// Replicas is the number of distinct shards every placement key is
	// written to (the key's owner plus the next Replicas-1 distinct
	// shards clockwise on the ring). 0 and 1 both select single-copy
	// placement. With Replicas >= 2 writes fan out to all owners, reads
	// fail over from the primary to the next replica on fatal errors or
	// a missing copy, and Scrub restores full replication after an
	// outage. Must not exceed the store count.
	Replicas int
}

// IOStats is a snapshot of one shard's I/O counters.
type IOStats struct {
	// Shard is the shard index in the stores slice.
	Shard int
	// Reads / Writes / Syncs count backend calls routed to the shard.
	Reads, Writes, Syncs int64
	// BytesRead / BytesWritten total the payloads moved.
	BytesRead, BytesWritten int64
}

// shardCounters is the mutable form of IOStats.
type shardCounters struct {
	reads, writes, syncs    atomic.Int64
	bytesRead, bytesWritten atomic.Int64
}

// topology is one immutable placement state of the Store. Every
// operation loads the pointer once and works against a consistent
// snapshot; topology transitions (BeginMigration, the mover's epoch
// commit, record adoption) build a new value and swap it in.
type topology struct {
	// stores is the slot-indexed store list. While migrating it is the
	// UNION of both epochs' lists: on grow the whole new list (the old
	// list is its prefix), on shrink the old list (the new list is its
	// prefix). Ring lookups of either epoch index into it directly.
	stores []backend.Store
	// uniq lists the distinct underlying stores (first-occurrence
	// order) with a representative slot index each. Namespace
	// operations iterate it instead of stores, so carving N logical
	// shards out of one physical store costs one backend call, not N.
	uniq []uniqueStore
	// lay is the current placement epoch: writes and commits route by
	// it, and it defines file existence (home shard).
	lay *layout.Layout
	// mig is non-nil while a migration is in progress; it carries the
	// previous epoch's layout and the dual-ring routing state.
	mig *migration
	// stats holds one counter block per slot; the pointers are shared
	// across topologies so counters survive transitions.
	stats []*shardCounters
	// health holds one breaker block per slot; like stats, the
	// pointers are shared across topologies.
	health []*slotHealth
}

// curStores returns the current epoch's slice of the slot list.
func (t *topology) curStores() []backend.Store { return t.stores[:t.lay.Shards()] }

// replicated reports whether the current epoch places more than one
// copy per key — the gate for every failover/fan-out path, so a
// single-copy store keeps exactly its historical behavior.
func (t *topology) replicated() bool { return t.lay.Replicas() > 1 }

// dedupSlots drops slots backed by a store already present earlier in
// the list (carve mode maps several slots onto one physical store; one
// copy per physical store is all replication can buy there).
func (t *topology) dedupSlots(slots []int) []int {
	if len(slots) < 2 {
		return slots
	}
	out := slots[:0:len(slots)]
	for i, sl := range slots {
		dup := false
		for _, prior := range slots[:i] {
			if t.stores[prior] == t.stores[sl] {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, sl)
		}
	}
	return out
}

// sameSlotSet reports whether a and b contain the same slots
// (order-insensitively; replica sets are small, so quadratic is fine).
func sameSlotSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// uniqueOf builds the uniq list for a store slice.
func uniqueOf(stores []backend.Store) []uniqueStore {
	var uniq []uniqueStore
	seen := make(map[backend.Store]bool, len(stores))
	for i, st := range stores {
		if !seen[st] {
			seen[st] = true
			uniq = append(uniq, uniqueStore{store: st, shard: i})
		}
	}
	return uniq
}

// Store stripes a flat file namespace across several backend.Store
// instances via an epoch-versioned consistent-hash layout. It
// implements backend.Store; see the package comment for placement
// semantics and migrate.go for online topology change.
//
// The same underlying store may appear in several slots: internal/core
// and the public Options use that to carve N *logical* shards (routing
// plus per-shard worker budgets) out of one physical store, which is
// byte-for-byte identical to the unsharded layout because every stripe
// keeps its global offset and file name.
type Store struct {
	topo atomic.Pointer[topology]
	// routeGen increments whenever key→slot routing can change for
	// reasons a long-lived handle cannot see locally: a topology swap
	// (BeginMigration, epoch commit, record adoption) or a mover
	// confirmation (which redirects the key's reads to a slot that may
	// previously have held nothing). Handles compare it to invalidate
	// their negative probe cache (file.missing).
	routeGen atomic.Uint64
	// migMu serializes topology transitions; the data path never takes
	// it.
	migMu sync.Mutex
	// damage journals replica copies that operations could not reach;
	// Scrub consults and clears it.
	damage damageJournal
	// scrub is non-nil while a scrub pass runs; replicated writes take
	// its per-key lock so a repair copy cannot interleave with a live
	// write of the same key.
	scrub atomic.Pointer[scrubState]
	// rec is the optional metrics recorder for replication events
	// (nil-safe; migrations carry their own via MigrateHooks).
	rec atomic.Pointer[metrics.Recorder]
	// Replication event counters (always live, recorder or not).
	replicaWrites, failoverReads, scrubRepairs, breakerOpens atomic.Int64
}

// SetRecorder attaches a metrics recorder to the store's replication
// events (ReplicaWrite, FailoverRead, ScrubRepair, BreakerOpen). A nil
// recorder detaches.
func (s *Store) SetRecorder(rec *metrics.Recorder) { s.rec.Store(rec) }

func (s *Store) noteReplicaWrite() {
	s.replicaWrites.Add(1)
	s.rec.Load().CountEvent(metrics.ReplicaWrite, 1)
}

func (s *Store) noteFailoverRead() {
	s.failoverReads.Add(1)
	s.rec.Load().CountEvent(metrics.FailoverRead, 1)
}

func (s *Store) noteScrubRepair() {
	s.scrubRepairs.Add(1)
	s.rec.Load().CountEvent(metrics.ScrubRepair, 1)
}

func (s *Store) noteBreakerOpen() {
	s.breakerOpens.Add(1)
	s.rec.Load().CountEvent(metrics.BreakerOpen, 1)
}

// ReplicationStats is a snapshot of the store's replication counters.
type ReplicationStats struct {
	// ReplicaWrites counts writes landed on non-primary replicas.
	ReplicaWrites int64
	// FailoverReads counts reads a non-primary replica served — the
	// primary owner failed, was missing the copy, or sat exiled behind
	// an open breaker.
	FailoverReads int64
	// ScrubRepairs counts replica copies Scrub re-created or rewrote.
	ScrubRepairs int64
	// BreakerOpens counts closed→open breaker transitions.
	BreakerOpens int64
}

// ReplicationStats returns a snapshot of the replication counters;
// all-zero for single-copy stores.
func (s *Store) ReplicationStats() ReplicationStats {
	return ReplicationStats{
		ReplicaWrites: s.replicaWrites.Load(),
		FailoverReads: s.failoverReads.Load(),
		ScrubRepairs:  s.scrubRepairs.Load(),
		BreakerOpens:  s.breakerOpens.Load(),
	}
}

// uniqueStore pairs a distinct underlying store with the lowest slot
// index it backs.
type uniqueStore struct {
	store backend.Store
	shard int
}

// New returns a sharded Store over the given backends at epoch 0. The
// order of stores is part of the placement contract: reopening a
// sharded deployment with the stores permuted scatters every lookup.
// A deployment that has rebalanced online persists its epoch on the
// shards; call AdoptLayout after New to pick it up.
func New(stores []backend.Store, cfg Config) (*Store, error) {
	if len(stores) == 0 {
		return nil, errors.New("shard: at least one backend store is required")
	}
	for i, s := range stores {
		if s == nil {
			return nil, fmt.Errorf("shard: store %d is nil", i)
		}
	}
	if cfg.StripeBytes < 0 {
		return nil, errors.New("shard: stripe size must be >= 0")
	}
	if cfg.Replicas < 0 {
		return nil, errors.New("shard: replicas must be >= 0")
	}
	if cfg.Replicas > len(stores) {
		return nil, fmt.Errorf("shard: %d replicas need at least %d stores, have %d",
			cfg.Replicas, cfg.Replicas, len(stores))
	}
	lay, err := layout.New(0, len(stores), cfg.Vnodes, cfg.StripeBytes)
	if err != nil {
		return nil, err
	}
	lay = lay.WithReplicas(cfg.Replicas)
	stores = append([]backend.Store(nil), stores...)
	stats := make([]*shardCounters, len(stores))
	health := make([]*slotHealth, len(stores))
	for i := range stats {
		stats[i] = &shardCounters{}
		health[i] = &slotHealth{}
	}
	s := &Store{}
	s.topo.Store(&topology{
		stores: stores,
		uniq:   uniqueOf(stores),
		lay:    lay,
		stats:  stats,
		health: health,
	})
	return s, nil
}

// NumShards returns the number of shard slots — during a migration
// the union of both epochs, so per-shard worker budgets cover every
// store being written. Together with ShardOf it is the seam
// internal/core uses to carve per-shard worker budgets.
func (s *Store) NumShards() int { return len(s.topo.Load().stores) }

// Ring returns the current epoch's placement map.
func (s *Store) Ring() *Ring { return s.topo.Load().lay.Ring() }

// Layout returns the current placement epoch.
func (s *Store) Layout() *layout.Layout { return s.topo.Load().lay }

// Epoch returns the current placement epoch number.
func (s *Store) Epoch() uint64 { return s.topo.Load().lay.Epoch() }

// StripeBytes returns the stripe unit (0 = whole-file placement).
func (s *Store) StripeBytes() int64 { return s.topo.Load().lay.StripeBytes() }

// Replicas returns the number of distinct copies the current epoch
// places per key; 1 for single-copy stores.
func (s *Store) Replicas() int { return s.topo.Load().lay.Replicas() }

// Shards returns the current epoch's backend stores, in placement
// order.
func (s *Store) Shards() []backend.Store {
	return append([]backend.Store(nil), s.topo.Load().curStores()...)
}

// ShardOf returns the shard owning byte off of the named file under
// the CURRENT epoch (the ring writes route by). It is pure ring
// arithmetic — no I/O, O(log vnodes) — so callers may use it on their
// hot paths to route work before touching data.
func (s *Store) ShardOf(name string, off int64) int {
	return s.topo.Load().lay.ShardOf(name, off)
}

// homeShard returns the slot that defines a file's existence under
// the current epoch: the owner of its first byte (equivalently, of
// stripe 0).
func (t *topology) homeShard(name string) int { return t.lay.ShardOf(name, 0) }

// readTarget resolves the slot a read of byte off of name should hit:
// the current owner once the key is confirmed moved (or was never
// relocated), the previous epoch's owner — the authoritative copy —
// until then. fellBack reports the dual-ring fallback case.
func (t *topology) readTarget(name string, off int64) (slot int, fellBack bool) {
	cur := t.lay.ShardOf(name, off)
	if t.mig == nil {
		return cur, false
	}
	key := t.lay.KeyOf(name, off)
	prev := t.mig.prev.Owner(key)
	if prev == cur || t.mig.confirmed(key) {
		return cur, false
	}
	return prev, true
}

// writeTargets resolves where a write of byte off of name must land.
// Stable (or unrelocated key): the current owner only. Mid-migration,
// a relocated key is DUAL-WRITTEN — the previous owner first, then
// the current owner — under the key's migration lock so the pair
// cannot interleave with the mover's copy of the same key. The mirror
// continues even AFTER the mover confirms the key: confirmations live
// only in memory, so after a crash every key reads from (and a mover
// rerun re-copies from) the previous owner again — which is only safe
// because the mirror kept that copy fresh until the epoch committed.
func (t *topology) writeTargets(name string, off int64) (primary, mirror int, mirrored bool, key string) {
	cur := t.lay.ShardOf(name, off)
	if t.mig == nil {
		return cur, 0, false, ""
	}
	key = t.lay.KeyOf(name, off)
	prev := t.mig.prev.Owner(key)
	if prev == cur {
		return cur, 0, false, ""
	}
	return prev, cur, true, key
}

// readTargets is readTarget generalized to a replica set: the
// failover-ordered candidate slots a read of byte off of name may be
// served from. The authoritative group comes whole — previous-epoch
// owners until the mover confirms a relocated key, current owners
// otherwise — because mid-copy current-epoch bytes must never serve
// reads, replica or not.
func (t *topology) readTargets(name string, off int64) (slots []int, fellBack bool) {
	key := t.lay.KeyOf(name, off)
	cur := t.lay.Owners(key)
	if t.mig == nil {
		return cur, false
	}
	prev := t.mig.prev.Owners(key)
	if sameSlotSet(prev, cur) || t.mig.confirmed(key) {
		return cur, false
	}
	return prev, true
}

// writeGroups is writeTargets generalized to replica sets: the slot
// groups a write of byte off of name must land in, in write order. A
// write is durable when every group has at least one success (and
// every reachable member a copy); mid-migration a relocated key gets
// both epochs' owner groups — previous first, mirroring writeTargets —
// under the key's migration lock (mirrored=true).
func (t *topology) writeGroups(name string, off int64) (groups [][]int, key string, mirrored bool) {
	key = t.lay.KeyOf(name, off)
	cur := t.lay.Owners(key)
	if t.mig == nil {
		return [][]int{cur}, key, false
	}
	prev := t.mig.prev.Owners(key)
	if sameSlotSet(prev, cur) {
		return [][]int{cur}, key, false
	}
	return [][]int{prev, cur}, key, true
}

// Stats returns a snapshot of every shard slot's I/O counters.
func (s *Store) Stats() []IOStats {
	t := s.topo.Load()
	out := make([]IOStats, len(t.stats))
	for i, c := range t.stats {
		out[i] = IOStats{
			Shard:        i,
			Reads:        c.reads.Load(),
			Writes:       c.writes.Load(),
			Syncs:        c.syncs.Load(),
			BytesRead:    c.bytesRead.Load(),
			BytesWritten: c.bytesWritten.Load(),
		}
	}
	return out
}

// Open implements backend.Store. Existence is decided by the home
// shard (falling back to the previous epoch's home mid-migration);
// stripe files on other shards are created lazily by writes.
func (s *Store) Open(name string, flag backend.OpenFlag) (backend.File, error) {
	return s.OpenCtx(nil, name, flag)
}

// OpenCtx implements backend.StoreCtx: ctx reaches the eager open
// here and every lazy per-shard open through the handle's *Ctx
// methods later.
func (s *Store) OpenCtx(ctx context.Context, name string, flag backend.OpenFlag) (backend.File, error) {
	if layout.IsReserved(name) {
		if flag == backend.OpenRead {
			return nil, backend.ErrNotExist
		}
		return nil, errReservedName
	}
	t := s.topo.Load()
	// The eager handle goes to the slot a read of byte 0 routes to:
	// pre-migration that is the home shard; mid-migration the previous
	// epoch's home keeps answering existence until the mover confirms
	// the key. Under replication the whole authoritative owner group is
	// tried in failover order.
	slot, hf, err := s.openEager(ctx, t, name, flag)
	if err != nil {
		return nil, err
	}
	f := &file{
		store: s,
		name:  name,
		flag:  flag,
		files: make(map[int]backend.File, 1),
	}
	f.files[slot] = hf
	// Creating a file mid-migration materializes it under BOTH epochs:
	// the current home defines existence after the epoch commits, the
	// previous home keeps the old-epoch view complete in case the
	// migration is abandoned after a crash.
	if flag == backend.OpenCreate && t.mig != nil && !t.replicated() {
		if home := t.homeShard(name); home != slot {
			if _, err := f.handle(ctx, t, home, true); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	// Under replication a create materializes the file on EVERY owner
	// of its home key (both epochs' owners mid-migration), so existence
	// survives losing any single shard. Unreachable owners are
	// journaled for Scrub instead of failing the open — the eager open
	// above already secured one copy.
	if flag == backend.OpenCreate && t.replicated() {
		key0 := t.lay.KeyOf(name, 0)
		want := t.lay.Owners(key0)
		if t.mig != nil {
			want = append(append([]int(nil), want...), t.mig.prev.Owners(key0)...)
		}
		for _, sl := range t.dedupSlots(want) {
			if sl == slot || t.stores[sl] == t.stores[slot] {
				continue
			}
			if _, err := f.handle(ctx, t, sl, true); err != nil {
				if backend.CtxErr(ctx) != nil {
					f.Close()
					return nil, err
				}
				s.slotFailed(t, sl)
				s.noteWriteMiss(key0, sl)
			}
		}
	}
	return f, nil
}

// openEager opens the initial handle of OpenCtx: the single routed
// slot for single-copy stores (historical behavior, strict errors),
// the first reachable member of the authoritative owner group under
// replication. Breaker-open slots are attempted last, and only when no
// live owner gave a definitive answer — a clean ErrNotExist from a
// live owner resolves the open without poking a known-dead shard.
func (s *Store) openEager(ctx context.Context, t *topology, name string, flag backend.OpenFlag) (int, backend.File, error) {
	if !t.replicated() {
		slot, _ := t.readTarget(name, 0)
		hf, err := backend.OpenCtx(ctx, t.stores[slot], name, flag)
		return slot, hf, err
	}
	slots, _ := t.readTargets(name, 0)
	order := make([]int, 0, len(slots))
	deferred := make([]int, 0, 1)
	for _, sl := range t.dedupSlots(slots) {
		if t.health[sl].allowed() {
			order = append(order, sl)
		} else {
			deferred = append(deferred, sl)
		}
	}
	var firstErr error
	sawMissing := false
	try := func(list []int) (int, backend.File, error, bool) {
		for _, sl := range list {
			hf, err := backend.OpenCtx(ctx, t.stores[sl], name, flag)
			if err == nil {
				t.health[sl].ok()
				return sl, hf, nil, true
			}
			if backend.CtxErr(ctx) != nil {
				return 0, nil, err, true
			}
			if errors.Is(err, backend.ErrNotExist) {
				sawMissing = true // store is alive, the name just is not there
				continue
			}
			s.slotFailed(t, sl)
			if firstErr == nil {
				firstErr = err
			}
		}
		return 0, nil, nil, false
	}
	if sl, hf, err, done := try(order); done {
		return sl, hf, err
	}
	if !sawMissing {
		if sl, hf, err, done := try(deferred); done {
			return sl, hf, err
		}
	}
	if sawMissing || firstErr == nil {
		return 0, nil, backend.ErrNotExist
	}
	return 0, nil, firstErr
}

// RemoveCtx implements backend.StoreCtx, checking ctx between the
// per-shard removes.
func (s *Store) RemoveCtx(ctx context.Context, name string) error {
	if layout.IsReserved(name) {
		return backend.ErrNotExist
	}
	t := s.topo.Load()
	if t.mig != nil {
		fl := t.mig.fileLock(name)
		fl.Lock()
		defer fl.Unlock()
		defer t.mig.forgetName(name)
	}
	if sc := s.scrub.Load(); sc != nil {
		fl := sc.fileLock(name)
		fl.Lock()
		defer fl.Unlock()
	}
	if t.replicated() {
		return s.removeReplicated(ctx, t, name)
	}
	return removeLocked(ctx, t, name)
}

// removeLocked is RemoveCtx after the migration file lock (if any)
// has been taken; RemoveCtx is its only caller, the split just keeps
// the locking at the entry point.
func removeLocked(ctx context.Context, t *topology, name string) error {
	homeStore := t.stores[t.homeShard(name)]
	err := backend.RemoveCtx(ctx, homeStore, name)
	if errors.Is(err, backend.ErrNotExist) && t.mig != nil {
		// Mid-migration the file may exist only under the previous
		// epoch's home; existence is the union of the two.
		if prevStore := t.stores[t.mig.prev.ShardOf(name, 0)]; prevStore != homeStore {
			err = backend.RemoveCtx(ctx, prevStore, name)
			homeStore = prevStore
		}
	}
	if err != nil {
		return err
	}
	for _, u := range t.uniq {
		if u.store == homeStore {
			continue
		}
		if err := backend.RemoveCtx(ctx, u.store, name); err != nil && !errors.Is(err, backend.ErrNotExist) {
			return err
		}
	}
	return nil
}

// removeReplicated is removeLocked for replicated topologies: the file
// exists while ANY home owner holds it, so the remove succeeds when at
// least one owner copy came off; unreachable copies are journaled so
// Scrub finishes the remove instead of resurrecting the name.
func (s *Store) removeReplicated(ctx context.Context, t *topology, name string) error {
	homes, _ := t.readTargets(name, 0)
	homes = t.dedupSlots(homes)
	removed, sawMissing := false, false
	var firstErr error
	done := make(map[backend.Store]bool, len(t.uniq))
	for _, sl := range homes {
		done[t.stores[sl]] = true
		err := backend.RemoveCtx(ctx, t.stores[sl], name)
		switch {
		case err == nil:
			t.health[sl].ok()
			removed = true
		case errors.Is(err, backend.ErrNotExist):
			sawMissing = true
		case backend.CtxErr(ctx) != nil:
			return err
		default:
			s.slotFailed(t, sl)
			s.noteRemoveMiss(name, sl)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if !removed {
		if sawMissing || firstErr == nil {
			// Every live owner agrees the name is gone; any copy stuck
			// on an unreachable owner is journaled above and reaped by
			// Scrub rather than surfacing a double-fault ambiguity here.
			return backend.ErrNotExist
		}
		return firstErr
	}
	for _, u := range t.uniq {
		if done[u.store] {
			continue
		}
		if err := backend.RemoveCtx(ctx, u.store, name); err != nil && !errors.Is(err, backend.ErrNotExist) {
			if backend.CtxErr(ctx) != nil {
				return err
			}
			s.slotFailed(t, u.shard)
			s.noteRemoveMiss(name, u.shard)
		}
	}
	return nil
}

// ListCtx implements backend.StoreCtx.
func (s *Store) ListCtx(ctx context.Context) ([]string, error) {
	if err := backend.CtxErr(ctx); err != nil {
		return nil, err
	}
	return s.List()
}

// StatCtx implements backend.StoreCtx.
func (s *Store) StatCtx(ctx context.Context, name string) (int64, error) {
	if err := backend.CtxErr(ctx); err != nil {
		return 0, err
	}
	return s.Stat(name)
}

// Remove implements backend.Store: the file is removed from every
// shard holding a stripe of it. The home shard decides existence.
func (s *Store) Remove(name string) error { return s.RemoveCtx(nil, name) }

// errReservedName reports an attempt to create or rename over the
// layout record's reserved name.
var errReservedName = fmt.Errorf("shard: %q is reserved for the layout record", layout.RecordName)

// Rename implements backend.Store. Renaming changes every placement
// key, so in general the data must move; when the whole file stays on
// one shard the rename is delegated (and stays atomic), otherwise the
// content is copied to its new placement and the old name removed —
// NOT atomic across shards, which callers of a sharded store must
// tolerate (none of the engine's consistency paths rename).
func (s *Store) Rename(oldName, newName string) error {
	if layout.IsReserved(oldName) || layout.IsReserved(newName) {
		return errReservedName
	}
	t := s.topo.Load()
	if t.mig != nil {
		// Both names' placement state changes; drop any confirmations
		// for either name so their keys restart unconfirmed (the old
		// copies are authoritative again and the mover re-copies). The
		// rename itself takes NO coarse file locks — its constituent
		// operations (routed writes, truncate, remove) each serialize
		// against the mover with the per-key and per-file locks they
		// already hold, and rename is documented non-atomic anyway.
		defer t.mig.forgetName(oldName)
		defer t.mig.forgetName(newName)
	}
	oldHome := t.homeShard(oldName)
	newHome := t.homeShard(newName)
	if t.mig == nil && t.lay.StripeBytes() <= 0 && t.stores[oldHome] == t.stores[newHome] {
		if err := t.stores[oldHome].Rename(oldName, newName); err != nil {
			return err
		}
		// The name may still linger on other shards (e.g. after a ring
		// change); drop stale copies so List stays clean.
		for _, u := range t.uniq {
			if u.store == t.stores[oldHome] {
				continue
			}
			_ = u.store.Remove(oldName)
		}
		return nil
	}
	if _, err := copyNamed(s, oldName, s, newName); err != nil {
		if errors.Is(err, backend.ErrNotExist) {
			return fmt.Errorf("rename %q: %w", oldName, backend.ErrNotExist)
		}
		return err
	}
	return s.Remove(oldName)
}

// List implements backend.Store: the union of the shards' namespaces,
// filtered to names whose home shard holds them (a stripe file whose
// home copy is gone is garbage, not a file; mid-migration the
// previous epoch's home also vouches for existence) and with the
// layout record hidden.
func (s *Store) List() ([]string, error) {
	t := s.topo.Load()
	seen := make(map[string]bool)
	perStore := make(map[backend.Store]map[string]bool, len(t.uniq))
	for _, u := range t.uniq {
		names, err := u.store.List()
		if err != nil {
			if t.replicated() {
				// A dead shard must not take the whole namespace down;
				// its names are vouched for by replica owners below.
				s.slotFailed(t, u.shard)
				continue
			}
			return nil, err
		}
		set := make(map[string]bool, len(names))
		for _, n := range names {
			if layout.IsReserved(n) {
				continue
			}
			set[n] = true
			seen[n] = true
		}
		perStore[u.store] = set
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		var live bool
		if t.replicated() {
			// Existence is vouched for by ANY owner of the home key,
			// under either epoch while migrating.
			for _, sl := range t.lay.Owners(t.lay.KeyOf(n, 0)) {
				if perStore[t.stores[sl]][n] {
					live = true
					break
				}
			}
			if !live && t.mig != nil {
				for _, sl := range t.mig.prev.Owners(t.mig.prev.KeyOf(n, 0)) {
					if perStore[t.stores[sl]][n] {
						live = true
						break
					}
				}
			}
		} else {
			live = perStore[t.stores[t.homeShard(n)]][n]
			if !live && t.mig != nil {
				live = perStore[t.stores[t.mig.prev.ShardOf(n, 0)]][n]
			}
		}
		if live {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stat implements backend.Store. A striped file's physical size is
// the maximum across shards: every write extends the shard owning the
// written range, so the shard owning the final stripe always reaches
// the true size.
func (s *Store) Stat(name string) (int64, error) {
	if layout.IsReserved(name) {
		return 0, backend.ErrNotExist
	}
	t := s.topo.Load()
	if t.replicated() {
		return s.statReplicated(t, name)
	}
	homeStore := t.stores[t.homeShard(name)]
	size, err := homeStore.Stat(name)
	if errors.Is(err, backend.ErrNotExist) && t.mig != nil {
		if prevStore := t.stores[t.mig.prev.ShardOf(name, 0)]; prevStore != homeStore {
			size, err = prevStore.Stat(name)
			homeStore = prevStore
		}
	}
	if err != nil {
		return 0, err
	}
	for _, u := range t.uniq {
		if u.store == homeStore {
			continue
		}
		sz, err := u.store.Stat(name)
		if err != nil {
			if errors.Is(err, backend.ErrNotExist) {
				continue
			}
			return 0, err
		}
		if sz > size {
			size = sz
		}
	}
	return size, nil
}

// statReplicated is Stat with failover: existence is decided by the
// home-owner group (any live copy vouches), and the max-size sweep
// skips unreachable stores — exact under a single shard loss because
// every stripe's extent lives on every owner of that stripe.
func (s *Store) statReplicated(t *topology, name string) (int64, error) {
	homes, _ := t.readTargets(name, 0)
	homes = t.dedupSlots(homes)
	var size int64
	found, sawMissing := false, false
	var firstErr error
	done := make(map[backend.Store]bool, len(t.uniq))
	for _, sl := range homes {
		done[t.stores[sl]] = true
		sz, err := t.stores[sl].Stat(name)
		switch {
		case err == nil:
			t.health[sl].ok()
			if !found || sz > size {
				size = sz
			}
			found = true
		case errors.Is(err, backend.ErrNotExist):
			sawMissing = true
		default:
			s.slotFailed(t, sl)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if !found {
		if sawMissing || firstErr == nil {
			return 0, backend.ErrNotExist
		}
		return 0, firstErr
	}
	for _, u := range t.uniq {
		if done[u.store] {
			continue
		}
		sz, err := u.store.Stat(name)
		if err != nil {
			if !errors.Is(err, backend.ErrNotExist) {
				s.slotFailed(t, u.shard)
			}
			continue
		}
		if sz > size {
			size = sz
		}
	}
	return size, nil
}

func (t *topology) countRead(shard, n int) {
	c := t.stats[shard]
	c.reads.Add(1)
	c.bytesRead.Add(int64(n))
}

func (t *topology) countWrite(shard, n int) {
	c := t.stats[shard]
	c.writes.Add(1)
	c.bytesWritten.Add(int64(n))
}

func (t *topology) countSync(shard int) {
	if shard < len(t.stats) {
		t.stats[shard].syncs.Add(1)
	}
}
