package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lamassu/internal/backend"
	"lamassu/internal/shard/layout"
)

// Config tunes a sharded Store.
type Config struct {
	// Vnodes is the virtual-node count per shard on the placement
	// ring. 0 selects DefaultVnodes. Changing it changes placement, so
	// it must match between the process that wrote a store and every
	// process that opens it (see Rebalance to migrate).
	Vnodes int
	// StripeBytes, when > 0, additionally stripes each backing file:
	// its bytes [s·StripeBytes, (s+1)·StripeBytes) live on the shard
	// owning the derived key "name\x00s". 0 places every file whole on
	// the shard owning its name. Stripe boundaries should align with
	// the layout's segment size so one multiphase commit lands on one
	// shard.
	StripeBytes int64
}

// IOStats is a snapshot of one shard's I/O counters.
type IOStats struct {
	// Shard is the shard index in the stores slice.
	Shard int
	// Reads / Writes / Syncs count backend calls routed to the shard.
	Reads, Writes, Syncs int64
	// BytesRead / BytesWritten total the payloads moved.
	BytesRead, BytesWritten int64
}

// shardCounters is the mutable form of IOStats.
type shardCounters struct {
	reads, writes, syncs    atomic.Int64
	bytesRead, bytesWritten atomic.Int64
}

// topology is one immutable placement state of the Store. Every
// operation loads the pointer once and works against a consistent
// snapshot; topology transitions (BeginMigration, the mover's epoch
// commit, record adoption) build a new value and swap it in.
type topology struct {
	// stores is the slot-indexed store list. While migrating it is the
	// UNION of both epochs' lists: on grow the whole new list (the old
	// list is its prefix), on shrink the old list (the new list is its
	// prefix). Ring lookups of either epoch index into it directly.
	stores []backend.Store
	// uniq lists the distinct underlying stores (first-occurrence
	// order) with a representative slot index each. Namespace
	// operations iterate it instead of stores, so carving N logical
	// shards out of one physical store costs one backend call, not N.
	uniq []uniqueStore
	// lay is the current placement epoch: writes and commits route by
	// it, and it defines file existence (home shard).
	lay *layout.Layout
	// mig is non-nil while a migration is in progress; it carries the
	// previous epoch's layout and the dual-ring routing state.
	mig *migration
	// stats holds one counter block per slot; the pointers are shared
	// across topologies so counters survive transitions.
	stats []*shardCounters
}

// curStores returns the current epoch's slice of the slot list.
func (t *topology) curStores() []backend.Store { return t.stores[:t.lay.Shards()] }

// uniqueOf builds the uniq list for a store slice.
func uniqueOf(stores []backend.Store) []uniqueStore {
	var uniq []uniqueStore
	seen := make(map[backend.Store]bool, len(stores))
	for i, st := range stores {
		if !seen[st] {
			seen[st] = true
			uniq = append(uniq, uniqueStore{store: st, shard: i})
		}
	}
	return uniq
}

// Store stripes a flat file namespace across several backend.Store
// instances via an epoch-versioned consistent-hash layout. It
// implements backend.Store; see the package comment for placement
// semantics and migrate.go for online topology change.
//
// The same underlying store may appear in several slots: internal/core
// and the public Options use that to carve N *logical* shards (routing
// plus per-shard worker budgets) out of one physical store, which is
// byte-for-byte identical to the unsharded layout because every stripe
// keeps its global offset and file name.
type Store struct {
	topo atomic.Pointer[topology]
	// routeGen increments whenever key→slot routing can change for
	// reasons a long-lived handle cannot see locally: a topology swap
	// (BeginMigration, epoch commit, record adoption) or a mover
	// confirmation (which redirects the key's reads to a slot that may
	// previously have held nothing). Handles compare it to invalidate
	// their negative probe cache (file.missing).
	routeGen atomic.Uint64
	// migMu serializes topology transitions; the data path never takes
	// it.
	migMu sync.Mutex
}

// uniqueStore pairs a distinct underlying store with the lowest slot
// index it backs.
type uniqueStore struct {
	store backend.Store
	shard int
}

// New returns a sharded Store over the given backends at epoch 0. The
// order of stores is part of the placement contract: reopening a
// sharded deployment with the stores permuted scatters every lookup.
// A deployment that has rebalanced online persists its epoch on the
// shards; call AdoptLayout after New to pick it up.
func New(stores []backend.Store, cfg Config) (*Store, error) {
	if len(stores) == 0 {
		return nil, errors.New("shard: at least one backend store is required")
	}
	for i, s := range stores {
		if s == nil {
			return nil, fmt.Errorf("shard: store %d is nil", i)
		}
	}
	if cfg.StripeBytes < 0 {
		return nil, errors.New("shard: stripe size must be >= 0")
	}
	lay, err := layout.New(0, len(stores), cfg.Vnodes, cfg.StripeBytes)
	if err != nil {
		return nil, err
	}
	stores = append([]backend.Store(nil), stores...)
	stats := make([]*shardCounters, len(stores))
	for i := range stats {
		stats[i] = &shardCounters{}
	}
	s := &Store{}
	s.topo.Store(&topology{
		stores: stores,
		uniq:   uniqueOf(stores),
		lay:    lay,
		stats:  stats,
	})
	return s, nil
}

// NumShards returns the number of shard slots — during a migration
// the union of both epochs, so per-shard worker budgets cover every
// store being written. Together with ShardOf it is the seam
// internal/core uses to carve per-shard worker budgets.
func (s *Store) NumShards() int { return len(s.topo.Load().stores) }

// Ring returns the current epoch's placement map.
func (s *Store) Ring() *Ring { return s.topo.Load().lay.Ring() }

// Layout returns the current placement epoch.
func (s *Store) Layout() *layout.Layout { return s.topo.Load().lay }

// Epoch returns the current placement epoch number.
func (s *Store) Epoch() uint64 { return s.topo.Load().lay.Epoch() }

// StripeBytes returns the stripe unit (0 = whole-file placement).
func (s *Store) StripeBytes() int64 { return s.topo.Load().lay.StripeBytes() }

// Shards returns the current epoch's backend stores, in placement
// order.
func (s *Store) Shards() []backend.Store {
	return append([]backend.Store(nil), s.topo.Load().curStores()...)
}

// ShardOf returns the shard owning byte off of the named file under
// the CURRENT epoch (the ring writes route by). It is pure ring
// arithmetic — no I/O, O(log vnodes) — so callers may use it on their
// hot paths to route work before touching data.
func (s *Store) ShardOf(name string, off int64) int {
	return s.topo.Load().lay.ShardOf(name, off)
}

// homeShard returns the slot that defines a file's existence under
// the current epoch: the owner of its first byte (equivalently, of
// stripe 0).
func (t *topology) homeShard(name string) int { return t.lay.ShardOf(name, 0) }

// readTarget resolves the slot a read of byte off of name should hit:
// the current owner once the key is confirmed moved (or was never
// relocated), the previous epoch's owner — the authoritative copy —
// until then. fellBack reports the dual-ring fallback case.
func (t *topology) readTarget(name string, off int64) (slot int, fellBack bool) {
	cur := t.lay.ShardOf(name, off)
	if t.mig == nil {
		return cur, false
	}
	key := t.lay.KeyOf(name, off)
	prev := t.mig.prev.Owner(key)
	if prev == cur || t.mig.confirmed(key) {
		return cur, false
	}
	return prev, true
}

// writeTargets resolves where a write of byte off of name must land.
// Stable (or unrelocated key): the current owner only. Mid-migration,
// a relocated key is DUAL-WRITTEN — the previous owner first, then
// the current owner — under the key's migration lock so the pair
// cannot interleave with the mover's copy of the same key. The mirror
// continues even AFTER the mover confirms the key: confirmations live
// only in memory, so after a crash every key reads from (and a mover
// rerun re-copies from) the previous owner again — which is only safe
// because the mirror kept that copy fresh until the epoch committed.
func (t *topology) writeTargets(name string, off int64) (primary, mirror int, mirrored bool, key string) {
	cur := t.lay.ShardOf(name, off)
	if t.mig == nil {
		return cur, 0, false, ""
	}
	key = t.lay.KeyOf(name, off)
	prev := t.mig.prev.Owner(key)
	if prev == cur {
		return cur, 0, false, ""
	}
	return prev, cur, true, key
}

// Stats returns a snapshot of every shard slot's I/O counters.
func (s *Store) Stats() []IOStats {
	t := s.topo.Load()
	out := make([]IOStats, len(t.stats))
	for i, c := range t.stats {
		out[i] = IOStats{
			Shard:        i,
			Reads:        c.reads.Load(),
			Writes:       c.writes.Load(),
			Syncs:        c.syncs.Load(),
			BytesRead:    c.bytesRead.Load(),
			BytesWritten: c.bytesWritten.Load(),
		}
	}
	return out
}

// Open implements backend.Store. Existence is decided by the home
// shard (falling back to the previous epoch's home mid-migration);
// stripe files on other shards are created lazily by writes.
func (s *Store) Open(name string, flag backend.OpenFlag) (backend.File, error) {
	return s.OpenCtx(nil, name, flag)
}

// OpenCtx implements backend.StoreCtx: ctx reaches the eager open
// here and every lazy per-shard open through the handle's *Ctx
// methods later.
func (s *Store) OpenCtx(ctx context.Context, name string, flag backend.OpenFlag) (backend.File, error) {
	if layout.IsReserved(name) {
		if flag == backend.OpenRead {
			return nil, backend.ErrNotExist
		}
		return nil, errReservedName
	}
	t := s.topo.Load()
	// The eager handle goes to the slot a read of byte 0 routes to:
	// pre-migration that is the home shard; mid-migration the previous
	// epoch's home keeps answering existence until the mover confirms
	// the key.
	slot, _ := t.readTarget(name, 0)
	hf, err := backend.OpenCtx(ctx, t.stores[slot], name, flag)
	if err != nil {
		return nil, err
	}
	f := &file{
		store: s,
		name:  name,
		flag:  flag,
		files: make(map[int]backend.File, 1),
	}
	f.files[slot] = hf
	// Creating a file mid-migration materializes it under BOTH epochs:
	// the current home defines existence after the epoch commits, the
	// previous home keeps the old-epoch view complete in case the
	// migration is abandoned after a crash.
	if flag == backend.OpenCreate && t.mig != nil {
		if home := t.homeShard(name); home != slot {
			if _, err := f.handle(ctx, t, home, true); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return f, nil
}

// RemoveCtx implements backend.StoreCtx, checking ctx between the
// per-shard removes.
func (s *Store) RemoveCtx(ctx context.Context, name string) error {
	if layout.IsReserved(name) {
		return backend.ErrNotExist
	}
	t := s.topo.Load()
	if t.mig != nil {
		fl := t.mig.fileLock(name)
		fl.Lock()
		defer fl.Unlock()
		defer t.mig.forgetName(name)
	}
	return removeLocked(ctx, t, name)
}

// removeLocked is RemoveCtx after the migration file lock (if any)
// has been taken; RemoveCtx is its only caller, the split just keeps
// the locking at the entry point.
func removeLocked(ctx context.Context, t *topology, name string) error {
	homeStore := t.stores[t.homeShard(name)]
	err := backend.RemoveCtx(ctx, homeStore, name)
	if errors.Is(err, backend.ErrNotExist) && t.mig != nil {
		// Mid-migration the file may exist only under the previous
		// epoch's home; existence is the union of the two.
		if prevStore := t.stores[t.mig.prev.ShardOf(name, 0)]; prevStore != homeStore {
			err = backend.RemoveCtx(ctx, prevStore, name)
			homeStore = prevStore
		}
	}
	if err != nil {
		return err
	}
	for _, u := range t.uniq {
		if u.store == homeStore {
			continue
		}
		if err := backend.RemoveCtx(ctx, u.store, name); err != nil && !errors.Is(err, backend.ErrNotExist) {
			return err
		}
	}
	return nil
}

// ListCtx implements backend.StoreCtx.
func (s *Store) ListCtx(ctx context.Context) ([]string, error) {
	if err := backend.CtxErr(ctx); err != nil {
		return nil, err
	}
	return s.List()
}

// StatCtx implements backend.StoreCtx.
func (s *Store) StatCtx(ctx context.Context, name string) (int64, error) {
	if err := backend.CtxErr(ctx); err != nil {
		return 0, err
	}
	return s.Stat(name)
}

// Remove implements backend.Store: the file is removed from every
// shard holding a stripe of it. The home shard decides existence.
func (s *Store) Remove(name string) error { return s.RemoveCtx(nil, name) }

// errReservedName reports an attempt to create or rename over the
// layout record's reserved name.
var errReservedName = fmt.Errorf("shard: %q is reserved for the layout record", layout.RecordName)

// Rename implements backend.Store. Renaming changes every placement
// key, so in general the data must move; when the whole file stays on
// one shard the rename is delegated (and stays atomic), otherwise the
// content is copied to its new placement and the old name removed —
// NOT atomic across shards, which callers of a sharded store must
// tolerate (none of the engine's consistency paths rename).
func (s *Store) Rename(oldName, newName string) error {
	if layout.IsReserved(oldName) || layout.IsReserved(newName) {
		return errReservedName
	}
	t := s.topo.Load()
	if t.mig != nil {
		// Both names' placement state changes; drop any confirmations
		// for either name so their keys restart unconfirmed (the old
		// copies are authoritative again and the mover re-copies). The
		// rename itself takes NO coarse file locks — its constituent
		// operations (routed writes, truncate, remove) each serialize
		// against the mover with the per-key and per-file locks they
		// already hold, and rename is documented non-atomic anyway.
		defer t.mig.forgetName(oldName)
		defer t.mig.forgetName(newName)
	}
	oldHome := t.homeShard(oldName)
	newHome := t.homeShard(newName)
	if t.mig == nil && t.lay.StripeBytes() <= 0 && t.stores[oldHome] == t.stores[newHome] {
		if err := t.stores[oldHome].Rename(oldName, newName); err != nil {
			return err
		}
		// The name may still linger on other shards (e.g. after a ring
		// change); drop stale copies so List stays clean.
		for _, u := range t.uniq {
			if u.store == t.stores[oldHome] {
				continue
			}
			_ = u.store.Remove(oldName)
		}
		return nil
	}
	if _, err := copyNamed(s, oldName, s, newName); err != nil {
		if errors.Is(err, backend.ErrNotExist) {
			return fmt.Errorf("rename %q: %w", oldName, backend.ErrNotExist)
		}
		return err
	}
	return s.Remove(oldName)
}

// List implements backend.Store: the union of the shards' namespaces,
// filtered to names whose home shard holds them (a stripe file whose
// home copy is gone is garbage, not a file; mid-migration the
// previous epoch's home also vouches for existence) and with the
// layout record hidden.
func (s *Store) List() ([]string, error) {
	t := s.topo.Load()
	seen := make(map[string]bool)
	perStore := make(map[backend.Store]map[string]bool, len(t.uniq))
	for _, u := range t.uniq {
		names, err := u.store.List()
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool, len(names))
		for _, n := range names {
			if layout.IsReserved(n) {
				continue
			}
			set[n] = true
			seen[n] = true
		}
		perStore[u.store] = set
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		live := perStore[t.stores[t.homeShard(n)]][n]
		if !live && t.mig != nil {
			live = perStore[t.stores[t.mig.prev.ShardOf(n, 0)]][n]
		}
		if live {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stat implements backend.Store. A striped file's physical size is
// the maximum across shards: every write extends the shard owning the
// written range, so the shard owning the final stripe always reaches
// the true size.
func (s *Store) Stat(name string) (int64, error) {
	if layout.IsReserved(name) {
		return 0, backend.ErrNotExist
	}
	t := s.topo.Load()
	homeStore := t.stores[t.homeShard(name)]
	size, err := homeStore.Stat(name)
	if errors.Is(err, backend.ErrNotExist) && t.mig != nil {
		if prevStore := t.stores[t.mig.prev.ShardOf(name, 0)]; prevStore != homeStore {
			size, err = prevStore.Stat(name)
			homeStore = prevStore
		}
	}
	if err != nil {
		return 0, err
	}
	for _, u := range t.uniq {
		if u.store == homeStore {
			continue
		}
		sz, err := u.store.Stat(name)
		if err != nil {
			if errors.Is(err, backend.ErrNotExist) {
				continue
			}
			return 0, err
		}
		if sz > size {
			size = sz
		}
	}
	return size, nil
}

func (t *topology) countRead(shard, n int) {
	c := t.stats[shard]
	c.reads.Add(1)
	c.bytesRead.Add(int64(n))
}

func (t *topology) countWrite(shard, n int) {
	c := t.stats[shard]
	c.writes.Add(1)
	c.bytesWritten.Add(int64(n))
}

func (t *topology) countSync(shard int) {
	if shard < len(t.stats) {
		t.stats[shard].syncs.Add(1)
	}
}
