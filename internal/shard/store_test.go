package shard_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"lamassu/internal/backend"
	"lamassu/internal/core"
	"lamassu/internal/cryptoutil"
	"lamassu/internal/fstest"
	"lamassu/internal/layout"
	"lamassu/internal/shard"
	"lamassu/internal/vfs"
)

func testKey(b byte) cryptoutil.Key {
	var k cryptoutil.Key
	for i := range k {
		k[i] = b ^ byte(i*11)
	}
	return k
}

func memStores(n int) ([]backend.Store, []*backend.MemStore) {
	stores := make([]backend.Store, n)
	mems := make([]*backend.MemStore, n)
	for i := range stores {
		mems[i] = backend.NewMemStore()
		stores[i] = mems[i]
	}
	return stores, mems
}

func newShardStore(t *testing.T, n int, stripe int64) (*shard.Store, []*backend.MemStore) {
	t.Helper()
	stores, mems := memStores(n)
	s, err := shard.New(stores, shard.Config{StripeBytes: stripe})
	if err != nil {
		t.Fatal(err)
	}
	return s, mems
}

// Whole-file placement: each file lives entirely on the shard owning
// its name, and the namespace operations see one coherent store.
func TestWholeFilePlacement(t *testing.T) {
	s, mems := newShardStore(t, 4, 0)
	contents := map[string][]byte{}
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("file-%02d", i)
		data := bytes.Repeat([]byte{byte(i)}, 100+i*37)
		contents[name] = data
		if err := backend.WriteFile(s, name, data); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range contents {
		got, err := backend.ReadFile(s, name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s: round trip failed: %v", name, err)
		}
		// Exactly one shard holds the file, and it is the ring owner.
		owner := s.ShardOf(name, 0)
		holders := 0
		for i, m := range mems {
			if _, err := m.Stat(name); err == nil {
				holders++
				if i != owner {
					t.Fatalf("%s: found on shard %d, owner is %d", name, i, owner)
				}
			}
		}
		if holders != 1 {
			t.Fatalf("%s: on %d shards, want exactly 1", name, holders)
		}
		sz, err := s.Stat(name)
		if err != nil || sz != int64(len(want)) {
			t.Fatalf("%s: Stat = %d, %v", name, sz, err)
		}
	}
	// Placement actually spreads: with 32 files over 4 shards every
	// shard should see at least one.
	for i, m := range mems {
		names, err := m.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(names) == 0 {
			t.Errorf("shard %d received no files from 32 placements", i)
		}
	}
	names, err := s.List()
	if err != nil || len(names) != len(contents) {
		t.Fatalf("List = %d names, %v; want %d", len(names), err, len(contents))
	}
	for _, n := range names {
		if err := s.Remove(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove("file-00"); !errors.Is(err, backend.ErrNotExist) {
		t.Fatalf("Remove(removed) = %v, want ErrNotExist", err)
	}
}

// Striped placement: a large file's ranges land on different shards,
// keep their global offsets, and read back through the union view,
// with zero-fill holes preserved across shard boundaries.
func TestStripedReadWrite(t *testing.T) {
	const stripe = 1024
	s, mems := newShardStore(t, 4, stripe)

	data := make([]byte, 16*stripe+123)
	rand.New(rand.NewSource(5)).Read(data)
	if err := backend.WriteFile(s, "big", data); err != nil {
		t.Fatal(err)
	}
	got, err := backend.ReadFile(s, "big")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("striped round trip failed: %v", err)
	}
	// More than one shard must hold part of the file.
	holders := 0
	for _, m := range mems {
		if _, err := m.Stat("big"); err == nil {
			holders++
		}
	}
	if holders < 2 {
		t.Fatalf("striped file landed on %d shards, want >= 2", holders)
	}
	if sz, err := s.Stat("big"); err != nil || sz != int64(len(data)) {
		t.Fatalf("Stat = %d, %v, want %d", sz, err, len(data))
	}

	// A sparse write far past EOF: the gap reads as zeros even though
	// the intervening stripes belong to shards that never saw a byte.
	f, err := s.Open("sparse", backend.OpenCreate)
	if err != nil {
		t.Fatal(err)
	}
	tail := []byte("tail")
	if _, err := f.WriteAt(tail, 10*stripe); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10*stripe+len(tail))
	if err := backend.ReadFull(f, buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10*stripe; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole byte %d = %#x, want 0", i, buf[i])
		}
	}
	if !bytes.Equal(buf[10*stripe:], tail) {
		t.Fatal("tail corrupted")
	}
	if sz, err := f.Size(); err != nil || sz != 10*stripe+int64(len(tail)) {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	// Reads crossing EOF return io.EOF like any other backend file.
	if _, err := f.ReadAt(make([]byte, 8), 10*stripe+int64(len(tail))-2); !errors.Is(err, io.EOF) {
		t.Fatalf("read across EOF: %v, want io.EOF", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, backend.ErrClosed) {
		t.Fatalf("double close: %v, want ErrClosed", err)
	}
}

// Reading holes must not materialize stripe files: only writes may
// create a shard's copy of a file.
func TestReadDoesNotMaterializeStripes(t *testing.T) {
	const stripe = 1024
	s, mems := newShardStore(t, 4, stripe)
	f, err := s.Open("sparse", backend.OpenCreate)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("end"), 12*stripe); err != nil {
		t.Fatal(err)
	}
	holders := func() int {
		n := 0
		for _, m := range mems {
			if _, err := m.Stat("sparse"); err == nil {
				n++
			}
		}
		return n
	}
	before := holders()
	// Sweep the whole file, including every hole stripe, through both
	// the writable handle and a fresh read-only one.
	buf := make([]byte, 12*stripe+3)
	if err := backend.ReadFull(f, buf, 0); err != nil {
		t.Fatal(err)
	}
	r, err := s.Open("sparse", backend.OpenRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.ReadFull(r, buf, 0); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if after := holders(); after != before {
		t.Fatalf("reads materialized stripe files: %d holders -> %d", before, after)
	}
}

// Truncate across stripes: shrink cuts every shard's copy, re-grow
// zero-fills, and the global size tracks exactly.
func TestStripedTruncate(t *testing.T) {
	const stripe = 1024
	s, _ := newShardStore(t, 3, stripe)
	data := make([]byte, 8*stripe)
	rand.New(rand.NewSource(6)).Read(data)
	if err := backend.WriteFile(s, "t", data); err != nil {
		t.Fatal(err)
	}
	f, err := s.Open("t", backend.OpenWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, size := range []int64{5*stripe + 7, 2 * stripe, 0, 3*stripe + 1} {
		if err := f.Truncate(size); err != nil {
			t.Fatalf("Truncate(%d): %v", size, err)
		}
		if sz, err := f.Size(); err != nil || sz != size {
			t.Fatalf("after Truncate(%d): Size = %d, %v", size, sz, err)
		}
		if st, err := s.Stat("t"); err != nil || st != size {
			t.Fatalf("after Truncate(%d): Stat = %d, %v", size, st, err)
		}
	}
	// The final grow from 0 re-exposed only zeros.
	buf := make([]byte, 3*stripe+1)
	if err := backend.ReadFull(f, buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("regrown byte %d = %#x, want 0", i, b)
		}
	}
}

// Carving N logical shards out of ONE physical store must be
// byte-for-byte invisible: same names, same bytes as writing the
// store directly. This is the property that makes Options.Shards safe
// to enable on an existing deployment.
func TestSameStoreCarveIsByteIdentical(t *testing.T) {
	writeAll := func(s backend.Store) {
		t.Helper()
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 8; i++ {
			data := make([]byte, 3000*i+17)
			rng.Read(data)
			if err := backend.WriteFile(s, fmt.Sprintf("f%d", i), data); err != nil {
				t.Fatal(err)
			}
		}
	}
	plain := backend.NewMemStore()
	writeAll(plain)

	carved := backend.NewMemStore()
	cs, err := shard.New(
		[]backend.Store{carved, carved, carved, carved},
		shard.Config{StripeBytes: 1024},
	)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(cs)

	plainNames, _ := plain.List()
	carvedNames, _ := carved.List()
	if fmt.Sprint(plainNames) != fmt.Sprint(carvedNames) {
		t.Fatalf("namespaces differ: %v vs %v", plainNames, carvedNames)
	}
	for _, n := range plainNames {
		a, _ := backend.ReadFile(plain, n)
		b, _ := backend.ReadFile(carved, n)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: carved bytes differ from direct bytes", n)
		}
	}
}

// Rename across shards moves the data to the new name's placement.
func TestRenameMovesPlacement(t *testing.T) {
	for _, stripe := range []int64{0, 1024} {
		s, mems := newShardStore(t, 4, stripe)
		data := make([]byte, 5000)
		rand.New(rand.NewSource(8)).Read(data)
		if err := backend.WriteFile(s, "old-name", data); err != nil {
			t.Fatal(err)
		}
		if err := s.Rename("old-name", "new-name"); err != nil {
			t.Fatal(err)
		}
		got, err := backend.ReadFile(s, "new-name")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("stripe=%d: rename lost data: %v", stripe, err)
		}
		if _, err := s.Stat("old-name"); !errors.Is(err, backend.ErrNotExist) {
			t.Fatalf("stripe=%d: old name still visible: %v", stripe, err)
		}
		for i, m := range mems {
			if _, err := m.Stat("old-name"); err == nil {
				t.Fatalf("stripe=%d: shard %d still holds the old name", stripe, i)
			}
		}
		names, _ := s.List()
		if len(names) != 1 || names[0] != "new-name" {
			t.Fatalf("stripe=%d: List = %v", stripe, names)
		}
	}
}

// Per-shard I/O counters attribute traffic to the shards that served
// it.
func TestStoreStats(t *testing.T) {
	s, _ := newShardStore(t, 3, 1024)
	data := make([]byte, 10*1024)
	rand.New(rand.NewSource(12)).Read(data)
	if err := backend.WriteFile(s, "f", data); err != nil {
		t.Fatal(err)
	}
	if _, err := backend.ReadFile(s, "f"); err != nil {
		t.Fatal(err)
	}
	var wr, rd int64
	for _, st := range s.Stats() {
		wr += st.BytesWritten
		rd += st.BytesRead
	}
	if wr != int64(len(data)) {
		t.Fatalf("BytesWritten total = %d, want %d", wr, len(data))
	}
	if rd != int64(len(data)) {
		t.Fatalf("BytesRead total = %d, want %d", rd, len(data))
	}
	spread := 0
	for _, st := range s.Stats() {
		if st.BytesWritten > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("write traffic hit %d shards, want >= 2", spread)
	}
}

// The full LamassuFS conformance suite over sharded stores: whole-file
// placement, aggressive 2-block striping, and a parallel engine with
// cache — the sharded store must be semantically invisible to the
// engine in every configuration.
func TestConformanceThroughCore(t *testing.T) {
	cases := []struct {
		name   string
		shards int
		stripe int64
		cfg    func(core.Config) core.Config
	}{
		{"WholeFile3Shards", 3, 0, nil},
		{"Striped2Blocks4Shards", 4, 8192, nil},
		{"Striped1Shard", 1, 8192, nil},
		{"StripedParallelCached", 4, 8192, func(c core.Config) core.Config {
			c.Parallelism = 4
			c.CacheBlocks = 64
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fstest.Conformance(t, func(t *testing.T) vfs.FS {
				stores, _ := memStores(tc.shards)
				s, err := shard.New(stores, shard.Config{StripeBytes: tc.stripe})
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.Config{Inner: testKey(1), Outer: testKey(2)}
				if tc.cfg != nil {
					cfg = tc.cfg(cfg)
				}
				fs, err := core.New(s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return fs
			})
		})
	}
}

// A sharded mount reports per-shard budgets carved from the pool and
// routes commit tasks through them.
func TestShardBudgetsThroughCore(t *testing.T) {
	stores, _ := memStores(4)
	segBytes := layout.Default().SegmentPhysBytes()
	s, err := shard.New(stores, shard.Config{StripeBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.New(s, core.Config{Inner: testKey(1), Outer: testKey(2), Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Spread several segments so multiple shards see commit tasks.
	data := make([]byte, 6*segBytes)
	rand.New(rand.NewSource(13)).Read(data)
	if err := vfs.WriteAll(fs, "f", data[:fs.Geometry().SegmentDataBytes()*6]); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.ReadAll(fs, "f"); err != nil {
		t.Fatal(err)
	}
	stats := fs.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats len = %d, want 4", len(stats))
	}
	totalBudget, totalTasks := 0, int64(0)
	for _, st := range stats {
		if st.Budget < 1 {
			t.Fatalf("shard %d budget = %d, want >= 1", st.Shard, st.Budget)
		}
		if st.QueueDepth != 0 {
			t.Fatalf("shard %d queue depth = %d at idle, want 0", st.Shard, st.QueueDepth)
		}
		totalBudget += st.Budget
		totalTasks += st.Tasks
	}
	if totalBudget != 8 {
		t.Fatalf("budgets sum to %d, want the pool width 8", totalBudget)
	}
	if totalTasks == 0 {
		t.Fatal("no tasks were charged to any shard budget")
	}
}
