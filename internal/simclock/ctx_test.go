package simclock

import (
	"context"
	"testing"
	"time"
)

func TestSleepCtxRealInterrupted(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := SleepCtx(ctx, Real{}, 30*time.Second)
	if err == nil {
		t.Fatal("interrupted sleep returned nil")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sleep was not cut short: %v", elapsed)
	}
}

func TestSleepCtxVirtual(t *testing.T) {
	v := NewVirtual()
	before := v.Now()
	if err := SleepCtx(context.Background(), v, time.Hour); err != nil {
		t.Fatal(err)
	}
	if v.Now().Sub(before) != time.Hour {
		t.Fatal("virtual sleep did not advance")
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepCtx(dead, v, time.Hour); err == nil {
		t.Fatal("dead ctx sleep returned nil")
	}
	// nil ctx always sleeps (advances).
	before = v.Now()
	if err := SleepCtx(nil, v, time.Minute); err != nil {
		t.Fatal(err)
	}
	if v.Now().Sub(before) != time.Minute {
		t.Fatal("nil-ctx virtual sleep did not advance")
	}
}
