// Package simclock provides a clock abstraction used throughout the
// benchmark harness so that simulated I/O delay (for example the NFS
// latency model in internal/nfssim) can be accounted without actually
// sleeping.
//
// Two implementations are provided:
//
//   - Real: wraps the wall clock; Sleep really sleeps.
//   - Virtual: a logical clock whose Sleep advances time instantly.
//
// Code under test asks the clock for the current instant and for
// sleeps; the harness then reads Elapsed off the same clock, so a run
// that "waited" 30 simulated seconds finishes in milliseconds of wall
// time while still reporting NFS-regime bandwidth numbers.
package simclock

import (
	"context"
	"sync"
	"time"
)

// Clock is the minimal time source used by the simulators and the
// benchmark harness.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time
	// Sleep advances the clock by d. On a real clock it blocks; on a
	// virtual clock it returns immediately after moving time forward.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// SleepCtx implements CtxSleeper: the wait ends early — returning
// ctx.Err() — if ctx is done first.
func (Real) SleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CtxSleeper is the optional interface of clocks whose waits can be
// interrupted by a context. Real implements it with a timer select;
// virtual clocks advance instantly, so the SleepCtx helper only needs
// an entry check for them.
type CtxSleeper interface {
	SleepCtx(ctx context.Context, d time.Duration) error
}

// SleepCtx sleeps d on c, honoring ctx: a real clock's wait is cut
// short when ctx is done, and any clock refuses to start a wait under
// an already-done context. A nil ctx sleeps unconditionally.
func SleepCtx(ctx context.Context, c Clock, d time.Duration) error {
	if ctx == nil {
		c.Sleep(d)
		return nil
	}
	if cs, ok := c.(CtxSleeper); ok {
		return cs.SleepCtx(ctx, d)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Sleep(d)
	return nil
}

// Virtual is a logical clock. It starts at an arbitrary fixed epoch and
// advances only when Sleep or Advance is called. It is safe for
// concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock positioned at a fixed epoch.
func NewVirtual() *Virtual {
	// An arbitrary but deterministic epoch; tests may rely on
	// differences only, never on the absolute value.
	return &Virtual{now: time.Unix(1_000_000_000, 0)}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing the clock without blocking.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves the clock forward by d. Negative durations are ignored.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Since returns the duration elapsed on the clock since t.
func Since(c Clock, t time.Time) time.Duration { return c.Now().Sub(t) }

// Stopwatch measures elapsed time on an arbitrary Clock.
type Stopwatch struct {
	c     Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on clock c.
func NewStopwatch(c Clock) *Stopwatch {
	return &Stopwatch{c: c, start: c.Now()}
}

// Elapsed reports the time since the stopwatch was started or last
// reset.
func (s *Stopwatch) Elapsed() time.Duration { return s.c.Now().Sub(s.start) }

// Reset restarts the stopwatch at the clock's current instant.
func (s *Stopwatch) Reset() { s.start = s.c.Now() }
