package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	v.Sleep(3 * time.Second)
	if got := v.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("elapsed = %v, want 3s", got)
	}
	v.Advance(-time.Second) // ignored
	v.Sleep(0)              // ignored
	if got := v.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("negative/zero advance changed clock: %v", got)
	}
}

func TestVirtualConcurrent(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Sleep(time.Millisecond)
		}()
	}
	wg.Wait()
	if got := v.Now().Sub(start); got != 50*time.Millisecond {
		t.Fatalf("concurrent advances lost: %v", got)
	}
}

func TestRealClockMonotone(t *testing.T) {
	var c Real
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Fatalf("real clock did not advance")
	}
	c.Sleep(-time.Second) // must not block or panic
}

func TestStopwatch(t *testing.T) {
	v := NewVirtual()
	sw := NewStopwatch(v)
	v.Advance(2 * time.Second)
	if got := sw.Elapsed(); got != 2*time.Second {
		t.Fatalf("Elapsed = %v", got)
	}
	sw.Reset()
	if got := sw.Elapsed(); got != 0 {
		t.Fatalf("after Reset, Elapsed = %v", got)
	}
	if got := Since(v, v.Now().Add(-time.Minute)); got != time.Minute {
		t.Fatalf("Since = %v", got)
	}
}
