// Package apigen renders a deterministic, textual snapshot of a Go
// package's exported API surface: exported constants, variables,
// types (with their exported struct fields / interface methods), and
// functions/methods with full signatures.
//
// The repository pins the public `lamassu` surface in api/lamassu.api;
// TestAPIGolden and a CI step regenerate the snapshot and diff it, so
// an accidental signature change (or removal) of anything exported
// fails loudly and an intentional one shows up as a reviewable diff of
// the golden file. This is the lightweight, dependency-free stand-in
// for golang.org/x/exp/cmd/apidiff.
//
// Line formats (sorted lexically in the output):
//
//	const Name
//	var Name
//	func Name(sig)
//	func (Recv) Name(sig)
//	type Name <kind or definition>
//	field Name.Field Type
//	embed Name EmbeddedType
//	method Name.Method func(sig)
package apigen

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// Generate parses the non-test Go files of the package in dir and
// returns its exported API, one declaration per line, sorted.
func Generate(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.SkipObjectResolution)
	if err != nil {
		return "", err
	}
	var lines []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for fname, f := range pkg.Files {
			if strings.HasSuffix(fname, "_test.go") {
				continue
			}
			ls, err := fileAPI(fset, f)
			if err != nil {
				return "", err
			}
			lines = append(lines, ls...)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

func fileAPI(fset *token.FileSet, f *ast.File) ([]string, error) {
	var out []string
	var rerr error
	emit := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	oneLine := func(n ast.Node) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, n); err != nil && rerr == nil {
			rerr = err
		}
		return strings.Join(strings.Fields(buf.String()), " ")
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			sig := oneLine(&ast.FuncType{Params: d.Type.Params, Results: d.Type.Results})
			sig = strings.TrimPrefix(sig, "func")
			if d.Recv != nil && len(d.Recv.List) == 1 {
				recv := oneLine(d.Recv.List[0].Type)
				// Methods on unexported receivers are reachable only
				// through interfaces, which list them; skip them here.
				if !exportedName(strings.TrimPrefix(recv, "*")) {
					continue
				}
				emit("func (%s) %s%s", recv, d.Name.Name, sig)
			} else {
				emit("func %s%s", d.Name.Name, sig)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					name := s.Name.Name
					assign := ""
					if s.Assign != token.NoPos {
						assign = "= "
					}
					switch t := s.Type.(type) {
					case *ast.StructType:
						emit("type %s %sstruct", name, assign)
						for _, fld := range t.Fields.List {
							ft := oneLine(fld.Type)
							if len(fld.Names) == 0 {
								if exportedName(strings.TrimPrefix(ft, "*")) || strings.Contains(ft, ".") {
									emit("embed %s %s", name, ft)
								}
								continue
							}
							for _, fn := range fld.Names {
								if fn.IsExported() {
									emit("field %s.%s %s", name, fn.Name, ft)
								}
							}
						}
					case *ast.InterfaceType:
						emit("type %s %sinterface", name, assign)
						for _, m := range t.Methods.List {
							mt := oneLine(m.Type)
							if len(m.Names) == 0 {
								emit("embed %s %s", name, mt)
								continue
							}
							for _, mn := range m.Names {
								if mn.IsExported() {
									emit("method %s.%s %s", name, mn.Name, mt)
								}
							}
						}
					default:
						emit("type %s %s%s", name, assign, oneLine(s.Type))
					}
				case *ast.ValueSpec:
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					for _, n := range s.Names {
						if n.IsExported() {
							emit("%s %s", kind, n.Name)
						}
					}
				}
			}
		}
	}
	return out, rerr
}

// exportedName reports whether an identifier-ish string starts with an
// exported (upper-case) letter.
func exportedName(s string) bool {
	return s != "" && s[0] >= 'A' && s[0] <= 'Z'
}
