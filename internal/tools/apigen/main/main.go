// Command apigen prints the exported API snapshot of a package
// directory (default "."). CI diffs its output for the repository
// root against api/lamassu.api:
//
//	go run ./internal/tools/apigen/main -dir . | diff -u api/lamassu.api -
package main

import (
	"flag"
	"fmt"
	"os"

	"lamassu/internal/tools/apigen"
)

func main() {
	dir := flag.String("dir", ".", "package directory to snapshot")
	flag.Parse()
	out, err := apigen.Generate(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apigen: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
