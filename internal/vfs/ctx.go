// Context plumbing and std-lib interop shared by every vfs.FS
// implementation (LamassuFS, EncFS, PlainFS, the per-file-CE and
// integrity layers).
package vfs

import (
	"context"
	"errors"
	"io"
	"sync"

	"lamassu/internal/backend"
)

// ErrCanceled reports an operation abandoned because its context was
// canceled or its deadline expired; it is the backend sentinel,
// re-exported so every layer returns the same value. Errors wrap both
// it and the context's own error (errors.Is-clean against
// context.Canceled / context.DeadlineExceeded).
var ErrCanceled = backend.ErrCanceled

// ErrClosed reports an operation on a closed handle; one sentinel for
// every layer, re-exported at the top as lamassu.ErrClosed.
var ErrClosed = backend.ErrClosed

// Canceled returns nil when ctx is nil or live, and otherwise an error
// wrapping ErrCanceled and ctx.Err(). Pass-through file systems use it
// as the entry check of their *Ctx methods.
func Canceled(ctx context.Context) error { return backend.CtxErr(ctx) }

// Positional is the positional-I/O subset Cursor adapts.
type Positional interface {
	io.ReaderAt
	io.WriterAt
	Size() (int64, error)
}

// Cursor layers the stateful io.Reader / io.Writer / io.Seeker methods
// over a positional file, giving every File io.ReadWriteSeeker
// conformance (and with it io.Copy, bufio, etc.) for free. A File
// implementation embeds a Cursor and binds it to itself at
// construction; the positional methods stay the primary interface and
// remain independent of the cursor.
//
// The cursor position is its own lock domain: concurrent Read/Write
// calls are serialized against each other (each consumes a distinct
// range, like POSIX file-description offsets) but never against the
// positional methods.
type Cursor struct {
	mu  sync.Mutex
	pos int64
	f   Positional
}

// BindCursor attaches the cursor to the file it is embedded in. Call
// once, before the handle is shared.
func (c *Cursor) BindCursor(f Positional) { c.f = f }

// Read implements io.Reader at the cursor position.
func (c *Cursor) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, err := c.f.ReadAt(p, c.pos)
	c.pos += int64(n)
	return n, err
}

// Write implements io.Writer at the cursor position.
func (c *Cursor) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, err := c.f.WriteAt(p, c.pos)
	c.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (c *Cursor) Seek(offset int64, whence int) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = c.pos
	case io.SeekEnd:
		size, err := c.f.Size()
		if err != nil {
			return 0, err
		}
		base = size
	default:
		return 0, errInvalidWhence
	}
	if base+offset < 0 {
		return 0, errNegativeSeek
	}
	c.pos = base + offset
	return c.pos, nil
}

var (
	errInvalidWhence = errors.New("vfs: invalid seek whence")
	errNegativeSeek  = errors.New("vfs: negative seek position")
)

// FileCloserCtx is the optional interface of Files whose Close-time
// flush can observe a context. CloseCtx ALWAYS releases the handle;
// under a canceled context it skips the flush of still-staged data
// (crash-equivalent: the on-disk state remains recoverable) instead
// of performing un-cancellable backend work.
type FileCloserCtx interface {
	CloseCtx(ctx context.Context) error
}

// CloseFileCtx closes f, forwarding ctx to the close-time flush when
// f supports it.
func CloseFileCtx(ctx context.Context, f File) error {
	if c, ok := f.(FileCloserCtx); ok {
		return c.CloseCtx(ctx)
	}
	return f.Close()
}

// WriteAllCtx is WriteAll with a context carried through every layer —
// including the deferred close: once ctx is canceled, no further
// backend work happens on its behalf, and no "canceled" data is
// silently committed by the handle teardown.
func WriteAllCtx(ctx context.Context, fs FS, name string, data []byte) error {
	f, err := fs.CreateCtx(ctx, name)
	if err != nil {
		return err
	}
	defer func() { _ = CloseFileCtx(ctx, f) }()
	if err := f.Truncate(0); err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := f.WriteAtCtx(ctx, data, 0); err != nil {
			return err
		}
	}
	return f.SyncCtx(ctx)
}

// ReadAllCtx is ReadAll with a context carried through every layer.
func ReadAllCtx(ctx context.Context, fs FS, name string) ([]byte, error) {
	f, err := fs.OpenCtx(ctx, name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, sz)
	if sz == 0 {
		return buf, nil
	}
	n, err := f.ReadAtCtx(ctx, buf, 0)
	if int64(n) == sz && (err == nil || err == io.EOF) {
		return buf, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, err
}
