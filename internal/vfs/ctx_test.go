package vfs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
)

// memPositional is a minimal Positional backing for Cursor tests.
type memPositional struct {
	buf []byte
}

func (m *memPositional) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memPositional) WriteAt(p []byte, off int64) (int, error) {
	if end := off + int64(len(p)); end > int64(len(m.buf)) {
		grown := make([]byte, end)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

func (m *memPositional) Size() (int64, error) { return int64(len(m.buf)), nil }

type cursored struct {
	Cursor
	*memPositional
}

func TestCursorReadWriteSeek(t *testing.T) {
	c := &cursored{memPositional: &memPositional{}}
	c.BindCursor(c.memPositional)

	if n, err := c.Write([]byte("hello ")); n != 6 || err != nil {
		t.Fatalf("Write: %d, %v", n, err)
	}
	if n, err := c.Write([]byte("world")); n != 5 || err != nil {
		t.Fatalf("Write: %d, %v", n, err)
	}
	if pos, err := c.Seek(0, io.SeekStart); pos != 0 || err != nil {
		t.Fatalf("Seek: %d, %v", pos, err)
	}
	out, err := io.ReadAll(struct{ io.Reader }{c})
	if err != nil || string(out) != "hello world" {
		t.Fatalf("ReadAll: %q, %v", out, err)
	}
	if pos, err := c.Seek(-5, io.SeekEnd); pos != 6 || err != nil {
		t.Fatalf("SeekEnd: %d, %v", pos, err)
	}
	var tail bytes.Buffer
	if _, err := io.Copy(&tail, struct{ io.Reader }{c}); err != nil {
		t.Fatal(err)
	}
	if tail.String() != "world" {
		t.Fatalf("tail: %q", tail.String())
	}
	if _, err := c.Seek(0, 42); err == nil {
		t.Fatal("invalid whence accepted")
	}
	if _, err := c.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
}

func TestCanceledHelper(t *testing.T) {
	if err := Canceled(nil); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if err := Canceled(context.Background()); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("dead ctx: %v", err)
	}
}
