// Package vfs defines the file-system interface exported by each of
// the three systems the paper evaluates — LamassuFS, EncFS and
// PlainFS — and shared helpers for block-granular I/O.
//
// In the paper's prototype this seam is Linux FUSE: applications issue
// POSIX file I/O, the kernel forwards it to the user-space shim, and
// the shim rewrites it onto a backing store (Figure 4). Here the FUSE
// transport is replaced by direct calls through vfs.FS; the shim logic
// below the seam is unchanged, and all three file systems sit behind
// the same interface so comparisons remain apples-to-apples (the
// paper ran even its plain baseline through FUSE for the same reason).
package vfs

import (
	"context"
	"errors"
	"io"
)

// ErrNotExist mirrors backend.ErrNotExist at the VFS level.
var ErrNotExist = errors.New("vfs: file does not exist")

// File is an open handle exposing synchronous positional I/O, the
// subset of POSIX semantics the paper's workloads use (FIO with 4 KiB
// sync I/O, file copies).
//
// Since API v2 a File is also an io.ReadWriteSeeker (every
// implementation embeds a Cursor bound to its positional methods, so
// handles plug straight into io.Copy and friends) and carries
// context-aware variants of the operations that touch the backing
// store. The *Ctx methods observe cancellation only between block and
// run boundaries — never inside a backend write — so an interrupted
// multiphase commit is exactly a crash cut the §2.4 recovery protocol
// repairs. Passing a nil context (or calling the plain methods, which
// are equivalent) preserves the pre-v2 behavior byte for byte.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.ReaderAt
	io.WriterAt
	// ReadAtCtx is ReadAt honoring ctx between blocks/runs.
	ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error)
	// WriteAtCtx is WriteAt honoring ctx between blocks/runs; a write
	// canceled mid-commit returns ErrCanceled and leaves the file
	// recoverable.
	WriteAtCtx(ctx context.Context, p []byte, off int64) (int, error)
	// Truncate sets the logical file size.
	Truncate(size int64) error
	// TruncateCtx is Truncate honoring ctx between the block and
	// segment operations a resize performs (a sub-block cut re-commits
	// the boundary segment); a canceled cut is crash-equivalent and
	// must be retried — or recovered — before the size is trustworthy.
	TruncateCtx(ctx context.Context, size int64) error
	// Size returns the logical file size (excluding any encryption
	// metadata the implementation embeds downstream).
	Size() (int64, error)
	// Sync flushes all buffered state (including any pending
	// multiphase commits) to the backing store.
	Sync() error
	// SyncCtx is Sync honoring ctx between the segment commits it
	// flushes.
	SyncCtx(ctx context.Context) error
	// Close flushes and releases the handle. Every operation on a
	// closed handle returns ErrClosed.
	Close() error
	// CloseCtx is Close honoring ctx. It ALWAYS releases the handle;
	// under a canceled context it skips the flush of still-staged data
	// (crash-equivalent: the on-disk state remains recoverable) instead
	// of performing un-cancellable backend work.
	CloseCtx(ctx context.Context) error
}

// FS is a flat-namespace file system. The *Ctx variants thread the
// context to the backing store (and, for LamassuFS, through the size
// load the open performs); a nil context selects the plain behavior.
type FS interface {
	// Create opens name read-write, creating it if absent.
	Create(name string) (File, error)
	// CreateCtx is Create honoring ctx.
	CreateCtx(ctx context.Context, name string) (File, error)
	// Open opens an existing file read-only.
	Open(name string) (File, error)
	// OpenCtx is Open honoring ctx.
	OpenCtx(ctx context.Context, name string) (File, error)
	// OpenRW opens an existing file read-write.
	OpenRW(name string) (File, error)
	// OpenRWCtx is OpenRW honoring ctx.
	OpenRWCtx(ctx context.Context, name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// RemoveCtx is Remove honoring ctx.
	RemoveCtx(ctx context.Context, name string) error
	// Stat returns the logical size of a file.
	Stat(name string) (int64, error)
	// StatCtx is Stat honoring ctx.
	StatCtx(ctx context.Context, name string) (int64, error)
	// List returns all file names, sorted.
	List() ([]string, error)
	// ListCtx is List honoring ctx.
	ListCtx(ctx context.Context) ([]string, error)
}

// Span describes the intersection of a byte range with one block: the
// caller's request [Off, Off+Len) covers bytes [Start, Start+Len) of
// block Index.
type Span struct {
	// Index is the zero-based block index.
	Index int64
	// Start is the first byte within the block.
	Start int
	// Len is the number of bytes within the block.
	Len int
	// BufOff is the offset of this span within the caller's buffer.
	BufOff int
}

// Full reports whether the span covers the entire block.
func (s Span) Full(blockSize int) bool { return s.Start == 0 && s.Len == blockSize }

// Spans splits the byte range [off, off+n) into per-block spans for
// the given block size. All block-granular file systems use this to
// turn arbitrary requests into whole-block operations (Lamassu's
// "base unit for any read or write is a full block", §2.3).
func Spans(off int64, n, blockSize int) []Span {
	if n <= 0 {
		return nil
	}
	bs := int64(blockSize)
	first := off / bs
	last := (off + int64(n) - 1) / bs
	out := make([]Span, 0, last-first+1)
	bufOff := 0
	for b := first; b <= last; b++ {
		start := 0
		if b == first {
			start = int(off - b*bs)
		}
		length := blockSize - start
		if remaining := n - bufOff; length > remaining {
			length = remaining
		}
		out = append(out, Span{Index: b, Start: start, Len: length, BufOff: bufOff})
		bufOff += length
	}
	return out
}

// WriteAll writes data at offset 0, truncating first — a helper used
// by copy tools and tests.
func WriteAll(fs FS, name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(0); err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := f.WriteAt(data, 0); err != nil {
			return err
		}
	}
	return f.Sync()
}

// ReadAll reads the full logical content of a file.
func ReadAll(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, sz)
	if sz == 0 {
		return buf, nil
	}
	n, err := f.ReadAt(buf, 0)
	if int64(n) == sz && (err == nil || errors.Is(err, io.EOF)) {
		return buf, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, err
}

// Copy streams a file from src to dst in chunkSize pieces, the way the
// paper's storage-efficiency experiments copy data files onto each
// volume (§4.1). It returns the number of bytes copied.
func Copy(dst FS, dstName string, src FS, srcName string, chunkSize int) (int64, error) {
	if chunkSize <= 0 {
		chunkSize = 1 << 20
	}
	in, err := src.Open(srcName)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := dst.Create(dstName)
	if err != nil {
		return 0, err
	}
	defer out.Close()
	if err := out.Truncate(0); err != nil {
		return 0, err
	}
	size, err := in.Size()
	if err != nil {
		return 0, err
	}
	buf := make([]byte, chunkSize)
	var off int64
	for off < size {
		n := chunkSize
		if int64(n) > size-off {
			n = int(size - off)
		}
		if _, err := in.ReadAt(buf[:n], off); err != nil && !errors.Is(err, io.EOF) {
			return off, err
		}
		if _, err := out.WriteAt(buf[:n], off); err != nil {
			return off, err
		}
		off += int64(n)
	}
	return off, out.Sync()
}
