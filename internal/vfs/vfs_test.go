package vfs

import (
	"testing"
	"testing/quick"
)

func TestSpansSingleBlock(t *testing.T) {
	s := Spans(0, 4096, 4096)
	if len(s) != 1 {
		t.Fatalf("spans = %v", s)
	}
	if s[0] != (Span{Index: 0, Start: 0, Len: 4096, BufOff: 0}) {
		t.Fatalf("span = %+v", s[0])
	}
	if !s[0].Full(4096) {
		t.Fatalf("full block not Full")
	}
}

func TestSpansPartial(t *testing.T) {
	// 100 bytes starting mid-block 0.
	s := Spans(1000, 100, 4096)
	if len(s) != 1 || s[0].Start != 1000 || s[0].Len != 100 {
		t.Fatalf("spans = %+v", s)
	}
	if s[0].Full(4096) {
		t.Fatalf("partial span reported Full")
	}
}

func TestSpansStraddle(t *testing.T) {
	// From byte 4000 for 5000 bytes: tail of block 0, all of block 1,
	// head of block 2.
	s := Spans(4000, 5000, 4096)
	if len(s) != 3 {
		t.Fatalf("spans = %+v", s)
	}
	if s[0] != (Span{Index: 0, Start: 4000, Len: 96, BufOff: 0}) {
		t.Fatalf("span0 = %+v", s[0])
	}
	if s[1] != (Span{Index: 1, Start: 0, Len: 4096, BufOff: 96}) {
		t.Fatalf("span1 = %+v", s[1])
	}
	if s[2] != (Span{Index: 2, Start: 0, Len: 808, BufOff: 4192}) {
		t.Fatalf("span2 = %+v", s[2])
	}
}

func TestSpansEmpty(t *testing.T) {
	if s := Spans(100, 0, 4096); s != nil {
		t.Fatalf("zero length spans = %v", s)
	}
	if s := Spans(100, -5, 4096); s != nil {
		t.Fatalf("negative length spans = %v", s)
	}
}

// Property: spans tile the request exactly — contiguous, in order,
// covering n bytes, each within its block.
func TestQuickSpansTile(t *testing.T) {
	f := func(off int64, n uint16, bsSel uint8) bool {
		if off < 0 {
			off = -off
		}
		off %= 1 << 30
		blockSize := []int{512, 1024, 4096}[int(bsSel)%3]
		length := int(n)%20000 + 1
		spans := Spans(off, length, blockSize)
		covered := 0
		for i, s := range spans {
			if s.BufOff != covered {
				return false
			}
			if s.Len <= 0 || s.Start < 0 || s.Start+s.Len > blockSize {
				return false
			}
			// Absolute position continuity.
			abs := s.Index*int64(blockSize) + int64(s.Start)
			if abs != off+int64(covered) {
				return false
			}
			// Only first span may have Start>0; only last may be short.
			if i > 0 && s.Start != 0 {
				return false
			}
			if i < len(spans)-1 && s.Start+s.Len != blockSize {
				return false
			}
			covered += s.Len
		}
		return covered == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
