// Package lamassu is the public API of this repository's
// reproduction of
//
//	Lamassu: Storage-Efficient Host-Side Encryption
//	Peter Shah and Won So (NetApp), USENIX ATC 2015.
//
// Lamassu is a transparent, host-side ("data-source") encryption shim
// that preserves block-level deduplication on the downstream storage
// system. It encrypts each 4 KiB data block with a convergent key
// derived from the block's own content and a shared secret inner key,
// so identical plaintext blocks written anywhere in the same isolation
// zone become identical ciphertext blocks — which an untrusted,
// deduplicating store can reclaim without being able to read them.
// All cryptographic metadata (the per-block keys) is embedded in
// reserved, block-aligned sections of each file's own data stream,
// sealed with AES-256-GCM under a second outer key, so no side-car
// key database is needed and ordinary file tools can copy, replicate
// or migrate encrypted files intact.
//
// # Quick start
//
//	keys, _ := lamassu.GenerateKeys()
//	m, _ := lamassu.New(lamassu.NewMemStorage(), keys)
//	f, _ := m.Create("hello.txt")
//	f.WriteAt([]byte("hello, deduplicating world"), 0)
//	f.Close()
//
// Construction is by functional options (see New and the With*
// options); the legacy Options struct remains supported through
// NewMount. See the examples/ directory for complete programs: a
// quickstart, a multi-tenant isolation-zone demo over a shared
// deduplicating store, a crash-recovery walkthrough, a Table-1-style
// VM-image backup scenario, and a context-cancellation walkthrough.
//
// # Contexts and cancellation (API v2)
//
// Every Mount operation has a *Ctx variant, and File carries
// ReadAtCtx/WriteAtCtx/SyncCtx; the context flows through every layer
// down to the backing store (including the shard router and the NFS
// simulator's round-trip waits). Cancellation is observed only BETWEEN
// backend operations — between blocks, runs, segments and commit
// phases, never inside a single write — so a canceled multiphase
// commit is indistinguishable from a crash cut at a write boundary:
// the operation returns an error wrapping both ErrCanceled and the
// context's own error, every previously committed byte remains
// readable, and the §2.4 recovery protocol (run implicitly by the next
// commit, or explicitly via Recover) repairs the interrupted segment.
// Retrying the canceled Sync/WriteAt with a live context converges
// without rewriting what already landed. A nil context — and every
// plain (non-Ctx) method — preserves the pre-v2 behavior byte for
// byte.
//
// # Std-lib interop
//
// A File is an io.Reader, io.Writer, io.Seeker, io.ReaderAt,
// io.WriterAt and io.Closer, so handles plug directly into io.Copy,
// bufio and friends. Mount.FS exposes a read-only io/fs.FS view of the
// mount (passing testing/fstest.TestFS), for code written against the
// standard file-system interfaces.
//
// # Concurrency
//
// A Mount is safe for concurrent use by any number of goroutines, and
// so is every File it returns. The engine behind a handle is
// parallel: positional reads and writes run concurrently, a segment's
// multiphase commit fans its per-block key derivation, encryption and
// backend writes across a bounded worker pool (Options.Parallelism),
// and commits of different segments proceed independently. What is
// serialized, and why:
//
//   - Writes that land in the same segment — and a read of a segment
//     with a commit of that same segment — take turns on a per-segment
//     lock, so a reader never observes a half-committed segment.
//   - Truncate, Sync and Close drain all in-flight I/O on that handle
//     first.
//   - The §2.4 metadata barriers are preserved at any parallelism: no
//     data block is written before the phase-1 metadata write
//     completes, and phase 3 begins only after every data write has
//     returned, so crash recovery is unchanged.
//
// One rule carries over from the paper's FUSE prototype: each file has
// a single writing handle at a time (goroutines sharing that one
// handle are fine). Opening two write handles to the same name, or
// writing a store behind an active Mount's back (e.g. Replicate into
// it), is outside the model — reads through other handles and mounts
// may then return stale data, particularly with the block cache
// enabled.
//
// The optional per-mount cache (Options.CacheBlocks) holds verified
// plaintext data blocks and decoded metadata blocks; hits skip backend
// I/O, AES and the integrity re-hash. Every mutating path — commit,
// truncate, re-key, recovery, remove — invalidates the affected
// entries before the backing store changes, so under the single-writer
// rule a hit always equals a fresh verified read.
package lamassu

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lamassu/internal/backend"
	"lamassu/internal/backend/hedge"
	"lamassu/internal/backend/objstore"
	"lamassu/internal/core"
	"lamassu/internal/cryptoutil"
	"lamassu/internal/dupless"
	"lamassu/internal/integrity"
	"lamassu/internal/kmip"
	"lamassu/internal/layout"
	"lamassu/internal/metrics"
	"lamassu/internal/namecrypt"
	"lamassu/internal/nfssim"
	"lamassu/internal/shard"
	"lamassu/internal/simclock"
	"lamassu/internal/vfs"
)

// Key is a 256-bit secret key.
type Key = cryptoutil.Key

// KeyPair bundles an isolation zone's two secrets: the inner key Kin
// (defining the deduplication domain) and the outer key Kout (defining
// the trust domain).
type KeyPair struct {
	Inner Key
	Outer Key
}

// GenerateKeys returns a fresh random key pair from crypto/rand.
func GenerateKeys() (KeyPair, error) {
	inner, err := cryptoutil.NewRandomKey()
	if err != nil {
		return KeyPair{}, err
	}
	outer, err := cryptoutil.NewRandomKey()
	if err != nil {
		return KeyPair{}, err
	}
	return KeyPair{Inner: inner, Outer: outer}, nil
}

// KeysFromBytes builds a pair from raw 32-byte secrets.
func KeysFromBytes(inner, outer []byte) (KeyPair, error) {
	in, err := cryptoutil.KeyFromBytes(inner)
	if err != nil {
		return KeyPair{}, err
	}
	out, err := cryptoutil.KeyFromBytes(outer)
	if err != nil {
		return KeyPair{}, err
	}
	return KeyPair{Inner: in, Outer: out}, nil
}

// FetchKeys retrieves a zone's key pair from a running key-management
// server (cmd/kmipd), the deployment model of the paper's §3: clients
// of one isolation zone share both keys.
func FetchKeys(serverAddr string, zone uint32) (KeyPair, error) {
	c, err := kmip.Dial(serverAddr)
	if err != nil {
		return KeyPair{}, err
	}
	defer c.Close()
	if _, err := c.CreateZone(kmip.Zone(zone)); err != nil {
		return KeyPair{}, err
	}
	p, err := c.GetPair(kmip.Zone(zone))
	if err != nil {
		return KeyPair{}, err
	}
	return KeyPair{Inner: p.Inner, Outer: p.Outer}, nil
}

// Storage is the backing-store interface a Mount writes through; the
// encrypted backing files it holds are ordinary flat files.
type Storage = backend.Store

// File is an open handle with synchronous positional I/O. Sizes and
// offsets are logical (plaintext) positions; the embedded metadata is
// invisible through this interface.
type File = vfs.File

// Integrity selects the read-path integrity level (paper §4.2).
type Integrity int

const (
	// IntegrityFull verifies every data block against its convergent
	// key on read (the default).
	IntegrityFull Integrity = iota
	// IntegrityMetaOnly verifies only metadata blocks (AES-GCM),
	// trading the per-block hash check for read throughput.
	IntegrityMetaOnly
)

// Options tunes a Mount. The zero value (or nil) selects the paper's
// defaults: 4096-byte blocks, R = 8 reserved slots, full integrity.
type Options struct {
	// BlockSize is the cipher/layout block size in bytes.
	BlockSize int
	// ReservedSlots is R, the number of transient key slots per
	// metadata block; it bounds write batching and sets the space
	// overhead (see Figures 10 and 11).
	ReservedSlots int
	// Integrity selects the read-path verification level.
	Integrity Integrity
	// CollectLatency enables the Figure 9 latency-breakdown
	// instrumentation, retrievable via Mount.Latency.
	CollectLatency bool
	// EncryptNames additionally encrypts file and directory names on
	// the backing store (deterministic SIV-style, per path segment) —
	// the extension the paper defers to future work in §2.1. The name
	// key is derived from the zone's outer key, so clients of one
	// trust domain resolve names identically.
	EncryptNames bool
	// KeyDeriver, when non-nil, replaces the local convergent KDF
	// with an external derivation such as the DupLESS server-aided
	// OPRF (internal/dupless, surfaced via NewDupLESSKeySource). It
	// must be deterministic in the block hash. Expect a severe
	// performance cost per block (the paper's §1 objection).
	KeyDeriver func(hash [32]byte) (Key, error)
	// Parallelism bounds the worker goroutines used for per-block
	// commit work (key derivation, encryption, data-block writes).
	// 0 selects GOMAXPROCS; 1 forces the paper's fully serial engine.
	Parallelism int
	// CacheBlocks sizes the per-mount LRU cache of verified plaintext
	// data blocks and decoded metadata blocks, in blocks (data and
	// metadata entries each count as one). 0 disables caching — the
	// paper's configuration. See the package comment for the cache's
	// coherence rules.
	CacheBlocks int
	// DisableCoalescing turns off the I/O coalescing layer and restores
	// the paper's per-block engine: one backend WriteAt per committed
	// data block, one backend ReadAt per block read, and commit batching
	// at R pending blocks. By default the engine merges disk-adjacent
	// blocks into runs — one backend I/O per run — and lets fresh
	// (previously-hole) blocks batch beyond R, since only overwrites of
	// live data claim the R transient key slots; a sequential
	// full-segment append then commits with runs+2 backend writes
	// instead of m+2. The §2.4 barriers, crash recovery and on-disk
	// layout are identical either way; the knob exists for A/B
	// measurement and paper-exact cost accounting.
	DisableCoalescing bool
	// Readahead is the number of blocks the sequential-read detector
	// prefetches asynchronously into the block cache when consecutive
	// reads form a forward scan. 0 disables readahead. It requires
	// CacheBlocks > 0 and is ignored when DisableCoalescing is set.
	Readahead int
	// Shards, when >= 1, carves the provided store into that many
	// logical shards behind a consistent-hash placement map: backing
	// files (and, via segment-aligned striping, ranges of large files)
	// are routed to shards, and the commit worker pool is split into
	// per-shard budgets so one hot shard cannot monopolize the
	// encrypt+write fan-out. Because every logical shard is the same
	// physical store, the backing bytes are identical to the unsharded
	// layout at ANY shard count — Shards: 1 is the plain engine plus
	// the routing layer. For sharding across genuinely separate
	// backends, build the store with NewShardedStorage instead and
	// leave Shards zero.
	Shards int
	// ShardVnodes is the virtual-node count per shard on the placement
	// ring (0 selects the default, 64). It must be the same every time
	// a sharded store is mounted; see RebalanceShards (offline) or
	// Mount.StartRebalance (online) to migrate.
	ShardVnodes int
	// Replicas, when nonzero, asserts the replication factor of the
	// sharded store the mount is given (see ShardOptions.Replicas,
	// where the factor is configured): the mount fails unless the store
	// maintains exactly this many copies of every key. It requires a
	// store from NewShardedStorage — carving one store into logical
	// shards (Shards) cannot replicate, since every copy would land on
	// the same physical store.
	Replicas int
	// LayoutEpoch, when nonzero, asserts the sharded deployment's
	// placement epoch at mount time: the mount fails unless the layout
	// record persisted on the shards (see Mount.StartRebalance) settles
	// at exactly this epoch — a guard against mounting a rebalanced
	// deployment with a stale store list. 0 accepts any epoch.
	LayoutEpoch uint64
	// DisableLayoutAdoption skips reading the persisted layout record
	// when mounting a sharded store. The mount then serves whatever
	// topology the options describe, epoch checks and interrupted-
	// migration resume included — an escape hatch for byte-exact
	// store inspection; do not use it on deployments that rebalance
	// online.
	DisableLayoutAdoption bool
	// Retry, when non-nil, wraps every backing store (each shard of a
	// sharded deployment, and stores joining it later) with bounded
	// retry of transient backend failures — see RetryPolicy and
	// WithRetry. Nil disables retries: every backend error surfaces on
	// first occurrence.
	Retry *RetryPolicy
	// IOWindow bounds the number of backend I/O operations the engine
	// keeps in flight at once, independent of Parallelism's CPU
	// budget — the pipelining knob for high-latency stores
	// (NewObjectStorage, WithSimulatedNFS), where useful concurrency is
	// set by the link's latency×bandwidth product rather than core
	// count. Independent runs of one read and the data writes of one
	// commit batch then overlap on the wire, up to this many requests
	// outstanding. 0 keeps the historical behavior (backend concurrency
	// follows the worker pool — right for local disks); 1 serializes
	// backend I/O, the A/B baseline. The §2.4 phase barriers remain
	// hard synchronization points at any setting and the backing bytes
	// are identical.
	IOWindow int
	// Hedge, when non-nil, wraps every physical backing store with
	// adaptive hedged reads: a read outstanding longer than a high
	// quantile of the store's observed read latency is duplicated, the
	// first usable response wins, and the loser is canceled. Reads
	// only; see HedgePolicy and WithHedgedReads. Nil disables hedging.
	Hedge *HedgePolicy
	// Compression enables deterministic per-block compression in the
	// encode path: each block is compressed with fixed encoder settings,
	// then encrypted under the convergent key derived from the RAW
	// plaintext hash — so two mounts writing identical plaintext still
	// produce identical backend ciphertext and deduplication is
	// preserved. The compressed payload occupies a prefix of the block's
	// fixed slot (on-disk addressing is unchanged; only the bytes per
	// backend read/write shrink), with its length recorded in the sealed
	// metadata. Incompressible blocks are stored verbatim and never cost
	// more than with compression off. Off (the default) produces
	// byte-identical output to prior releases; either setting reads
	// files written by the other.
	Compression bool
}

// Errors surfaced by the public API. ErrClosed, ErrCanceled and the
// PathError type live in errors.go.
var (
	// ErrNotExist reports an operation on a missing file.
	ErrNotExist = vfs.ErrNotExist
	// ErrIntegrity reports a data block failing its integrity check.
	ErrIntegrity = core.ErrIntegrity
	// ErrUnrecoverable reports crash damage recovery cannot repair.
	ErrUnrecoverable = core.ErrUnrecoverable
)

// Mount is a Lamassu instance over one backing store — the moral
// equivalent of the paper's FUSE mount point.
type Mount struct {
	fs     *core.FS
	rec    *metrics.Recorder
	closed atomic.Bool

	// hedges collects the hedged-read wrappers this mount created (nil
	// without Options.Hedge); see hedging.go.
	hedges *hedgeRegistry

	// Sharded-mount state for online rebalance (nil fields otherwise):
	// shard is the mounted sharded store, shardUser the user-visible
	// store handles per slot (pre name-encryption wrapping), wrapStore
	// the wrapper applied to stores joining the deployment.
	shard     *shard.Store
	shardUser []backend.Store
	wrapStore func(backend.Store) backend.Store

	rebMu     sync.Mutex
	reb       *Rebalance
	rebCancel context.CancelFunc
	// wrapped memoizes wrapStore per user handle (guarded by rebMu):
	// resuming a rebalance must map the same user store to the SAME
	// internal object, because the shard layer compares stores by
	// identity.
	wrapped map[backend.Store]backend.Store
}

// Close marks the mount closed: every subsequent operation on it
// returns an error wrapping ErrClosed. Files opened earlier keep
// working until individually closed, and the backing store — owned by
// the caller — is not touched. A rebalance mover still running is
// CANCELED and waited for (it stops at its next copy boundary,
// leaving the migration resumable), so after Close returns no
// background goroutine of this mount touches the stores. Closing
// twice returns ErrClosed.
func (m *Mount) Close() error {
	if m.closed.Swap(true) {
		return ErrClosed
	}
	m.rebMu.Lock()
	reb, cancel := m.reb, m.rebCancel
	m.rebMu.Unlock()
	if reb != nil && cancel != nil {
		cancel()
		<-reb.done
	}
	return nil
}

// guard rejects operations on a closed mount, wrapping the sentinel in
// a PathError when the operation names a file.
func (m *Mount) guard(op, name string) error {
	if !m.closed.Load() {
		return nil
	}
	if name == "" {
		return ErrClosed
	}
	return &PathError{Op: op, Path: name, Err: ErrClosed}
}

// NewMount opens a Lamassu file system over store with the given zone
// keys.
func NewMount(store Storage, keys KeyPair, opts *Options) (*Mount, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.BlockSize == 0 {
		o.BlockSize = layout.DefaultBlockSize
	}
	if o.ReservedSlots == 0 {
		o.ReservedSlots = layout.DefaultReservedSlots
	}
	geo, err := layout.NewGeometry(o.BlockSize, o.ReservedSlots)
	if err != nil {
		return nil, err
	}
	var rec *metrics.Recorder
	if o.CollectLatency {
		rec = metrics.New()
	}
	mode := core.IntegrityFull
	if o.Integrity == IntegrityMetaOnly {
		mode = core.IntegrityMetaOnly
	}
	origStore := store
	var userStores []backend.Store
	// wrapNew composes the per-leaf store wrappers, innermost first:
	// hedging sits directly on the physical store (its latency samples
	// and duplicate reads must see the raw store, not retries), retry
	// outside it (so a hedged read whose primary and hedge both fail
	// surfaces one classified error the retry layer then re-issues),
	// name encryption outermost. It is also applied to stores that join
	// the deployment later via StartRebalance.
	wrapNew := func(st backend.Store) backend.Store { return st }
	var hedges *hedgeRegistry
	if o.Hedge != nil {
		hedges = &hedgeRegistry{}
		pol := o.Hedge.backendPolicy(rec)
		reg := hedges
		wrapNew = func(st backend.Store) backend.Store {
			hs := hedge.New(st, pol)
			reg.add(hs)
			return hs
		}
	}
	if o.Retry != nil {
		pol := o.Retry.backendPolicy(rec)
		inner := wrapNew
		wrapNew = func(st backend.Store) backend.Store { return backend.NewRetryStore(inner(st), pol) }
	}
	if o.EncryptNames {
		nameKey := cryptoutil.DeriveSubKey(keys.Outer, "lamassu-name-encryption")
		inner := wrapNew
		wrapNew = func(st backend.Store) backend.Store { return namecrypt.New(inner(st), nameKey) }
	}
	if ss, ok := store.(*shard.Store); ok {
		userStores = ss.Shards()
		if o.EncryptNames || o.Retry != nil || o.Hedge != nil {
			// Rebuild the sharded view with each LEAF store wrapped, so
			// the sharding seam (budgets, read fan-out, placement
			// identity) stays outermost; one wrapper per physical store.
			views, err := wrapShardLeaves(wrapNew, ss)
			if err != nil {
				return nil, err
			}
			store = views[0]
		}
	} else {
		store = wrapNew(store)
	}
	if o.Shards < 0 {
		return nil, errors.New("lamassu: Shards must be >= 0")
	}
	if o.Shards >= 1 {
		if _, ok := store.(*shard.Store); ok {
			return nil, errors.New("lamassu: store is already sharded; use Options.Shards only with a plain store")
		}
		stores := make([]backend.Store, o.Shards)
		userStores = make([]backend.Store, o.Shards)
		for i := range stores {
			stores[i] = store
			userStores[i] = origStore
		}
		sharded, err := shard.New(stores, shard.Config{
			Vnodes:      o.ShardVnodes,
			StripeBytes: segmentAlignedStripe(geo, defaultStripeTarget),
		})
		if err != nil {
			return nil, err
		}
		store = sharded
	}
	// The crash-consistency model (§2.4) assumes whole-block write
	// atomicity, which striping preserves only when no block straddles
	// two shards.
	shardStore, _ := store.(*shard.Store)
	if o.Replicas != 0 {
		if shardStore == nil {
			return nil, errors.New("lamassu: Replicas requires a sharded store from NewShardedStorage")
		}
		if got := shardStore.Replicas(); got != o.Replicas {
			return nil, fmt.Errorf("lamassu: sharded store maintains %d-way replication, mount asserts %d-way", got, o.Replicas)
		}
	}
	if shardStore != nil {
		// Replication events (replica writes, failover reads, scrub
		// repairs, breaker transitions) flow into the mount's recorder;
		// the raw counters stay live on the store regardless.
		shardStore.SetRecorder(rec)
		if sb := shardStore.StripeBytes(); sb > 0 && sb%int64(geo.BlockSize) != 0 {
			return nil, fmt.Errorf("lamassu: shard stripe %d is not a multiple of the block size %d", sb, geo.BlockSize)
		}
		// Pick up the persisted layout epoch (and any interrupted
		// migration: the mount then reopens in dual-ring mode, every
		// byte readable, resumable via StartRebalance).
		if !o.DisableLayoutAdoption {
			if err := shardStore.AdoptLayout(nil, o.LayoutEpoch); err != nil {
				return nil, err
			}
		}
	} else if o.LayoutEpoch != 0 {
		return nil, errors.New("lamassu: LayoutEpoch requires a sharded store")
	}
	var deriver func(cryptoutil.Hash) (cryptoutil.Key, error)
	if o.KeyDeriver != nil {
		kd := o.KeyDeriver
		deriver = func(h cryptoutil.Hash) (cryptoutil.Key, error) { return kd(h) }
	}
	fs, err := core.New(store, core.Config{
		Geometry:          geo,
		Inner:             keys.Inner,
		Outer:             keys.Outer,
		Integrity:         mode,
		Recorder:          rec,
		KeyDeriver:        deriver,
		Parallelism:       o.Parallelism,
		CacheBlocks:       o.CacheBlocks,
		DisableCoalescing: o.DisableCoalescing,
		Readahead:         o.Readahead,
		IOWindow:          o.IOWindow,
		Compression:       o.Compression,
	})
	if err != nil {
		return nil, err
	}
	return &Mount{
		fs:        fs,
		rec:       rec,
		hedges:    hedges,
		shard:     shardStore,
		shardUser: userStores,
		wrapStore: wrapNew,
	}, nil
}

// MountFS is shorthand for NewMount.
func MountFS(store Storage, keys KeyPair, opts *Options) (*Mount, error) {
	return NewMount(store, keys, opts)
}

// Create opens name read-write, creating it if absent.
func (m *Mount) Create(name string) (File, error) { return m.CreateCtx(nil, name) }

// CreateCtx is Create honoring ctx through every layer.
func (m *Mount) CreateCtx(ctx context.Context, name string) (File, error) {
	if err := m.guard("create", name); err != nil {
		return nil, err
	}
	f, err := m.fs.CreateCtx(ctx, name)
	if err != nil {
		return nil, pathErr("create", name, err)
	}
	return f, nil
}

// Open opens an existing file read-only.
func (m *Mount) Open(name string) (File, error) { return m.OpenCtx(nil, name) }

// OpenCtx is Open honoring ctx.
func (m *Mount) OpenCtx(ctx context.Context, name string) (File, error) {
	if err := m.guard("open", name); err != nil {
		return nil, err
	}
	f, err := m.fs.OpenCtx(ctx, name)
	if err != nil {
		return nil, pathErr("open", name, err)
	}
	return f, nil
}

// OpenRW opens an existing file read-write.
func (m *Mount) OpenRW(name string) (File, error) { return m.OpenRWCtx(nil, name) }

// OpenRWCtx is OpenRW honoring ctx.
func (m *Mount) OpenRWCtx(ctx context.Context, name string) (File, error) {
	if err := m.guard("openrw", name); err != nil {
		return nil, err
	}
	f, err := m.fs.OpenRWCtx(ctx, name)
	if err != nil {
		return nil, pathErr("openrw", name, err)
	}
	return f, nil
}

// Remove deletes a file.
func (m *Mount) Remove(name string) error { return m.RemoveCtx(nil, name) }

// RemoveCtx is Remove honoring ctx.
func (m *Mount) RemoveCtx(ctx context.Context, name string) error {
	if err := m.guard("remove", name); err != nil {
		return err
	}
	return pathErr("remove", name, m.fs.RemoveCtx(ctx, name))
}

// Stat returns a file's logical size.
func (m *Mount) Stat(name string) (int64, error) { return m.StatCtx(nil, name) }

// StatCtx is Stat honoring ctx.
func (m *Mount) StatCtx(ctx context.Context, name string) (int64, error) {
	if err := m.guard("stat", name); err != nil {
		return 0, err
	}
	sz, err := m.fs.StatCtx(ctx, name)
	return sz, pathErr("stat", name, err)
}

// List returns all file names, sorted.
func (m *Mount) List() ([]string, error) { return m.ListCtx(nil) }

// ListCtx is List honoring ctx.
func (m *Mount) ListCtx(ctx context.Context) ([]string, error) {
	if err := m.guard("list", ""); err != nil {
		return nil, err
	}
	return m.fs.ListCtx(ctx)
}

// WriteFile writes data as the complete content of name.
func (m *Mount) WriteFile(name string, data []byte) error {
	return m.WriteFileCtx(nil, name, data)
}

// WriteFileCtx is WriteFile honoring ctx: the write and the commits it
// triggers observe cancellation between blocks and phases, with the
// crash-equivalent guarantees described in the package comment.
func (m *Mount) WriteFileCtx(ctx context.Context, name string, data []byte) error {
	if err := m.guard("write", name); err != nil {
		return err
	}
	return pathErr("write", name, vfs.WriteAllCtx(ctx, m.fs, name, data))
}

// ReadFile reads the complete logical content of name.
func (m *Mount) ReadFile(name string) ([]byte, error) {
	return m.ReadFileCtx(nil, name)
}

// ReadFileCtx is ReadFile honoring ctx between blocks and runs.
func (m *Mount) ReadFileCtx(ctx context.Context, name string) ([]byte, error) {
	if err := m.guard("read", name); err != nil {
		return nil, err
	}
	data, err := vfs.ReadAllCtx(ctx, m.fs, name)
	if err != nil {
		return nil, pathErr("read", name, err)
	}
	return data, nil
}

// VFS exposes the mount as the repository's internal vfs.FS, for code
// (benchmark harness, generators) written against that seam.
func (m *Mount) VFS() vfs.FS { return m.fs }

// CheckReport summarizes an integrity audit (see Check).
type CheckReport = core.CheckReport

// Check audits a file without modifying it: every metadata block's
// authentication tag and every data block's convergent hash are
// verified (paper §2.5).
func (m *Mount) Check(name string) (CheckReport, error) { return m.CheckCtx(nil, name) }

// CheckCtx is Check honoring ctx between segments; a canceled audit is
// simply incomplete.
func (m *Mount) CheckCtx(ctx context.Context, name string) (CheckReport, error) {
	if err := m.guard("check", name); err != nil {
		return CheckReport{}, err
	}
	rep, err := m.fs.CheckCtx(ctx, name)
	return rep, pathErr("check", name, err)
}

// RecoverStats summarizes a crash-recovery pass (see Recover).
type RecoverStats = core.RecoverStats

// Recover scans a file for segments left mid-update by a crash and
// repairs them using the multiphase-commit recovery protocol (paper
// §2.4). The file must be idle.
func (m *Mount) Recover(name string) (RecoverStats, error) { return m.RecoverCtx(nil, name) }

// RecoverCtx is Recover honoring ctx between segments; a canceled pass
// has repaired a prefix and can simply be rerun.
func (m *Mount) RecoverCtx(ctx context.Context, name string) (RecoverStats, error) {
	if err := m.guard("recover", name); err != nil {
		return RecoverStats{}, err
	}
	stats, err := m.fs.RecoverCtx(ctx, name)
	return stats, pathErr("recover", name, err)
}

// CacheStats is a snapshot of the block cache's counters (see
// Mount.CacheStats).
type CacheStats = core.CacheStats

// CacheStats reports the mount's block-cache effectiveness; all zero
// unless the mount was created with Options.CacheBlocks > 0.
func (m *Mount) CacheStats() CacheStats { return m.fs.CacheStats() }

// PoolStats is a snapshot of the commit worker pool's counters (see
// Mount.PoolStats).
type PoolStats = core.PoolStats

// PoolStats reports the mount's commit fan-out activity.
func (m *Mount) PoolStats() PoolStats { return m.fs.PoolStats() }

// EngineStats is a snapshot of the engine counters behind the Figure 9
// latency breakdown: how many backend calls the mount issued, how much
// payload they moved, and how well the coalescing layer and slab
// allocator are doing. The recorder-backed counters (BackendIOs
// through RetriesExhausted) are zero unless the mount was created with
// Options.CollectLatency; the I/O-window gauges and hedged-read
// counters are live regardless, since they come from the window and
// the hedging wrappers themselves.
type EngineStats struct {
	// BackendIOs counts backend calls (reads, writes, truncates,
	// syncs) the engine timed under the I/O category.
	BackendIOs int64
	// IOBytes is the total payload moved by those calls; BytesPerIO is
	// the mean payload per call — the coalescing layer's headline
	// metric (4096 for the paper's per-block engine, a multiple of it
	// once runs merge).
	IOBytes    int64
	BytesPerIO float64
	// WriteRuns and ReadRuns count coalesced backend I/Os (one per run
	// of adjacent blocks written or fetched in a single call);
	// Prefetches counts readahead windows issued by the
	// sequential-read detector.
	WriteRuns, ReadRuns, Prefetches int64
	// SlabHits and SlabMisses count scratch-buffer requests served
	// from the slab pool versus freshly allocated.
	SlabHits, SlabMisses int64
	// RetryAttempts counts backend operations re-issued by the
	// WithRetry wrapper after a transient failure; RetriesExhausted
	// counts operations that still failed after the retry budget ran
	// out. Both zero without WithRetry.
	RetryAttempts, RetriesExhausted int64
	// IOWindow is the configured backend I/O window (Options.IOWindow;
	// 0 = unwindowed). IOInFlight gauges the backend operations holding
	// a window slot right now; IOPeakInFlight is the deepest the window
	// has been — how much of the configured budget the workload
	// actually used.
	IOWindow                   int
	IOInFlight, IOPeakInFlight int64
	// HedgeAttempts counts duplicate reads issued by the WithHedgedReads
	// wrapper; HedgeWins counts hedges whose response beat the
	// primary's. ReadP50 and ReadP99 are the observed backend
	// read-latency quantiles the adaptive hedge delay is derived from —
	// the worst store's value on a sharded mount; HedgedReadStats has
	// the per-store breakdown. All zero without WithHedgedReads.
	HedgeAttempts, HedgeWins int64
	ReadP50, ReadP99         time.Duration
	// LogicalBytes and StoredBytes account the data-block payloads the
	// engine moved: LogicalBytes in full plaintext blocks, StoredBytes
	// as actually put on (or fetched off) the wire after compression.
	// Equal with compression off; their ratio is the live compression
	// ratio. CompressedBlocks counts blocks stored compressed;
	// RawEscapes counts incompressible blocks stored verbatim. All four
	// zero without Options.CollectLatency.
	LogicalBytes, StoredBytes    int64
	CompressedBlocks, RawEscapes int64
	// ReplicaWrites counts writes landed on non-primary replica copies
	// of a replicated sharded store; FailoverReads counts reads a
	// replica served after the preferred copy failed or was missing;
	// ScrubRepairs counts copies Mount.Scrub re-created or rewrote;
	// BreakerOpens counts shard-health breaker openings (see
	// Mount.ShardHealth). Live regardless of CollectLatency; all zero
	// without replication.
	ReplicaWrites, FailoverReads int64
	ScrubRepairs, BreakerOpens   int64
}

// CompressionRatio returns LogicalBytes/StoredBytes — the live
// compression ratio of the data-block payloads moved so far (1.0 with
// compression off or on incompressible data) — or 0 before any data
// moved.
func (s EngineStats) CompressionRatio() float64 {
	if s.StoredBytes > 0 {
		return float64(s.LogicalBytes) / float64(s.StoredBytes)
	}
	return 0
}

// SlabHitRate returns SlabHits/(SlabHits+SlabMisses), or 0 before any
// request.
func (s EngineStats) SlabHitRate() float64 {
	if total := s.SlabHits + s.SlabMisses; total > 0 {
		return float64(s.SlabHits) / float64(total)
	}
	return 0
}

// EngineStats reports the mount's I/O and allocator counters. The
// recorder-backed fields are zero unless the mount was created with
// Options.CollectLatency; the I/O-window and hedged-read fields are
// always live.
func (m *Mount) EngineStats() EngineStats {
	var s EngineStats
	if m.rec != nil {
		b := m.rec.Snapshot()
		s = EngineStats{
			BackendIOs:       b.IOs(),
			IOBytes:          b.IOBytes,
			BytesPerIO:       b.BytesPerIO(),
			WriteRuns:        b.Event(metrics.WriteRun),
			ReadRuns:         b.Event(metrics.ReadRun),
			Prefetches:       b.Event(metrics.Prefetch),
			SlabHits:         b.Event(metrics.SlabHit),
			SlabMisses:       b.Event(metrics.SlabMiss),
			RetryAttempts:    b.Event(metrics.RetryAttempt),
			RetriesExhausted: b.Event(metrics.RetryExhausted),
			LogicalBytes:     b.LogicalBytes,
			StoredBytes:      b.StoredBytes,
			CompressedBlocks: b.Event(metrics.BlockCompressed),
			RawEscapes:       b.Event(metrics.RawEscape),
		}
	}
	iw := m.fs.IOWindowStats()
	s.IOWindow, s.IOInFlight, s.IOPeakInFlight = iw.Window, iw.InFlight, iw.Peak
	if m.shard != nil {
		rs := m.shard.ReplicationStats()
		s.ReplicaWrites, s.FailoverReads = rs.ReplicaWrites, rs.FailoverReads
		s.ScrubRepairs, s.BreakerOpens = rs.ScrubRepairs, rs.BreakerOpens
	}
	for _, hs := range m.hedges.snapshot() {
		st := hs.ReadStats()
		s.HedgeAttempts += st.Hedges
		s.HedgeWins += st.HedgeWins
		if st.P50 > s.ReadP50 {
			s.ReadP50 = st.P50
		}
		if st.P99 > s.ReadP99 {
			s.ReadP99 = st.P99
		}
	}
	return s
}

// RekeyStats summarizes a key-rotation pass.
type RekeyStats = core.RekeyStats

// RekeyOuter re-seals a file's metadata blocks under a new outer key —
// the paper's fast partial re-key (§2.2). Data blocks and the
// deduplication domain are untouched. Subsequent opens must use a
// Mount configured with the new outer key.
func (m *Mount) RekeyOuter(name string, newOuter Key) (RekeyStats, error) {
	return m.RekeyOuterCtx(nil, name, newOuter)
}

// RekeyOuterCtx is RekeyOuter honoring ctx between segments. A
// canceled rotation is resumable: rerun it from the same mount (still
// configured with the old outer key) and segments already sealed under
// newOuter are detected and skipped. Discard the old key only after a
// pass completes without error.
func (m *Mount) RekeyOuterCtx(ctx context.Context, name string, newOuter Key) (RekeyStats, error) {
	if err := m.guard("rekey-outer", name); err != nil {
		return RekeyStats{}, err
	}
	stats, err := m.fs.RekeyOuterCtx(ctx, name, newOuter)
	return stats, pathErr("rekey-outer", name, err)
}

// RekeyFull re-encrypts a file under a new key pair, moving it to a
// new deduplication isolation zone. The file must be idle.
func (m *Mount) RekeyFull(name string, newKeys KeyPair) (RekeyStats, error) {
	return m.RekeyFullCtx(nil, name, newKeys)
}

// RekeyFullCtx is RekeyFull honoring ctx between segments; the
// rotation is segment-atomic, so a canceled pass leaves segments split
// between the two key pairs — retain both and rerun to finish
// (already-rotated segments are detected and skipped).
func (m *Mount) RekeyFullCtx(ctx context.Context, name string, newKeys KeyPair) (RekeyStats, error) {
	if err := m.guard("rekey-full", name); err != nil {
		return RekeyStats{}, err
	}
	stats, err := m.fs.RekeyFullCtx(ctx, name, newKeys.Inner, newKeys.Outer)
	return stats, pathErr("rekey-full", name, err)
}

// SpaceOverhead returns the metadata overhead in bytes that Lamassu
// adds to a file of the given logical size (Equations 4–7).
func (m *Mount) SpaceOverhead(logicalSize int64) int64 {
	return m.fs.Geometry().Overhead(logicalSize)
}

// MinOverheadRatio returns the asymptotic space overhead ratio,
// 1/KeysPerSegment (Equation 8) — 0.85 % at the default R = 8.
func (m *Mount) MinOverheadRatio() float64 {
	return m.fs.Geometry().MinOverheadRatio()
}

// LatencySlice is one category of the Figure 9 latency breakdown.
type LatencySlice struct {
	Category string
	Total    time.Duration
	Fraction float64
}

// Latency returns the accumulated latency breakdown (Encrypt, Decrypt,
// GetCEKey, I/O, Misc). It returns nil unless the mount was created
// with Options.CollectLatency.
func (m *Mount) Latency() []LatencySlice {
	if m.rec == nil {
		return nil
	}
	b := m.rec.Snapshot()
	out := make([]LatencySlice, 0, 5)
	for _, c := range metrics.Categories() {
		out = append(out, LatencySlice{
			Category: c.String(),
			Total:    b.Total[c],
			Fraction: b.Fraction(c),
		})
	}
	return out
}

// ResetLatency zeroes the latency accumulators.
func (m *Mount) ResetLatency() {
	if m.rec != nil {
		m.rec.Reset()
	}
}

// NewMemStorage returns an in-memory backing store (the RAM-disk
// configuration of the paper's Figures 8–10).
func NewMemStorage() Storage { return backend.NewMemStore() }

// ObjectStoreParams models the simulated object store's link: a
// per-request round trip (reads RTT, writes WriteRTT when nonzero), a
// wire bandwidth in bytes per second, and an optional deterministic
// two-point latency tail (every TailEvery-th request multiplied by
// TailMult). The zero value charges no latency at all.
type ObjectStoreParams = objstore.ServerParams

// NewMemObjectStorage returns an in-memory S3-style object store as a
// backing Storage — the remote-backend counterpart of NewMemStorage.
// Backing files become objects: reads are ranged GETs, a handle's
// writes accumulate in a multipart upload session that its Sync (or
// Close) completes atomically, and Stat/List map to HEAD and paginated
// LIST. Every request pays the configured round trip, which is the
// regime the pipelining (WithIOWindow) and hedged-read
// (WithHedgedReads) layers are built for; transport failures are
// classified retryable, so WithRetry composes. Waits are real
// (wall-clock), as in WithSimulatedNFS.
func NewMemObjectStorage(p ObjectStoreParams) Storage {
	return objstore.New(objstore.NewMemserver(p, nil))
}

// ShardOptions tunes NewShardedStorage.
type ShardOptions struct {
	// Vnodes is the virtual-node count per shard on the placement
	// ring; 0 selects the default (64). Placement depends on it, so it
	// must match every time the same deployment is opened.
	Vnodes int
	// StripeBytes, when > 0, stripes ranges of large backing files
	// across shards; 0 places each file whole on one shard. It must be
	// a multiple of the mount's block size so a block write can never
	// straddle two shards (whole-block write atomicity, §2.4); a
	// multiple of the segment physical size additionally keeps each
	// segment's metadata and data together. StripeBytes is part of the
	// placement, so it too must be stable across opens.
	StripeBytes int64
	// Replicas, when >= 2, keeps that many copies of every key, on the
	// next distinct shards clockwise from the owner on the placement
	// ring. Writes fan out to every replica, reads fail over when a
	// copy is unreachable, and Mount.Scrub repairs divergence. The
	// factor is persisted in the layout record and becomes part of the
	// deployment's on-disk identity; it requires at least that many
	// stores. 0 and 1 mean single-copy.
	Replicas int
}

// NewShardedStorage stripes a backing namespace across several
// independent stores — the multi-backend deployment where each shard
// is its own directory, disk or filer. Placement is a consistent-hash
// ring (deterministic across processes; see internal/shard), and a
// Mount over the result carves its commit worker pool into per-shard
// budgets automatically. The store order is part of the placement
// contract. Use RebalanceShards to add or remove shards offline.
func NewShardedStorage(stores []Storage, opts *ShardOptions) (Storage, error) {
	var o ShardOptions
	if opts != nil {
		o = *opts
	}
	bs := make([]backend.Store, len(stores))
	copy(bs, stores)
	return shard.New(bs, shard.Config{Vnodes: o.Vnodes, StripeBytes: o.StripeBytes, Replicas: o.Replicas})
}

// SegmentStripeBytes returns a stripe size for ShardOptions that is a
// whole number of segments for the geometry opts implies and is at
// least target bytes (target <= 0 selects ~4 MiB). Segment-aligned
// stripes keep every multiphase commit on a single shard.
func SegmentStripeBytes(opts *Options, target int64) (int64, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.BlockSize == 0 {
		o.BlockSize = layout.DefaultBlockSize
	}
	if o.ReservedSlots == 0 {
		o.ReservedSlots = layout.DefaultReservedSlots
	}
	geo, err := layout.NewGeometry(o.BlockSize, o.ReservedSlots)
	if err != nil {
		return 0, err
	}
	if target <= 0 {
		target = defaultStripeTarget
	}
	return segmentAlignedStripe(geo, target), nil
}

// defaultStripeTarget is the approximate stripe size used when no
// explicit target is given: large enough that small files stay whole
// on one shard, small enough that a multi-gigabyte file spreads its
// commit load across every shard.
const defaultStripeTarget = 4 << 20

// segmentAlignedStripe rounds target up to a whole number of segments
// of an already-validated geometry.
func segmentAlignedStripe(geo layout.Geometry, target int64) int64 {
	seg := geo.SegmentPhysBytes()
	n := (target + seg - 1) / seg
	if n < 1 {
		n = 1
	}
	return n * seg
}

// ShardStat is one shard's slice of a sharded mount's activity: the
// I/O the placement routed to it and the worker-budget pressure it is
// under. Together the entries show whether load is spreading (bytes
// and ops roughly even) and where the bottleneck sits (queue depth
// pinned at one shard = hot spot; even queues at full budgets = the
// pool is the ceiling).
type ShardStat struct {
	// Shard is the shard index, in store order.
	Shard int
	// Reads / Writes / Syncs count backend calls routed to the shard;
	// BytesRead / BytesWritten total the payloads.
	Reads, Writes, Syncs    int64
	BytesRead, BytesWritten int64
	// Budget is the shard's worker budget (its slice of
	// Options.Parallelism), at least 1 per shard. At Parallelism 1
	// the budgets are reported but execution is fully serial; an
	// unsharded mount reports no ShardStats at all.
	Budget int
	// Tasks counts commit fan-out tasks and read fetches executed for
	// this shard; QueueDepth is how many are queued or running now.
	Tasks, QueueDepth int64
}

// ShardStats reports per-shard activity for a mount over a sharded
// store (Options.Shards or NewShardedStorage); nil otherwise.
func (m *Mount) ShardStats() []ShardStat {
	ss, ok := m.fs.Store().(*shard.Store)
	if !ok {
		return nil
	}
	io := ss.Stats()
	out := make([]ShardStat, len(io))
	for i, s := range io {
		out[i] = ShardStat{
			Shard:        s.Shard,
			Reads:        s.Reads,
			Writes:       s.Writes,
			Syncs:        s.Syncs,
			BytesRead:    s.BytesRead,
			BytesWritten: s.BytesWritten,
		}
	}
	for _, b := range m.fs.ShardStats() {
		if b.Shard < len(out) {
			out[b.Shard].Budget = b.Budget
			out[b.Shard].Tasks = b.Tasks
			out[b.Shard].QueueDepth = b.QueueDepth
		}
	}
	return out
}

// ShardHealth is one shard slot's failover-health snapshot (see
// Mount.ShardHealth).
type ShardHealth = shard.ShardHealth

// ShardHealth reports per-slot failover health for a mount over a
// sharded store: failure/success counts and the state of each slot's
// breaker (a slot with too many consecutive failures is exiled to
// half-open probing until a probe succeeds). All-zero entries are the
// steady state; nil for unsharded mounts. The breaker only reroutes
// traffic that has somewhere else to go — a slot is always attempted
// when it is the last hope for a read — so health can never turn a
// degraded deployment into a failed one.
func (m *Mount) ShardHealth() []ShardHealth {
	if m.shard == nil {
		return nil
	}
	return m.shard.Health()
}

// ScrubStats summarizes a replica scrub pass (see Mount.Scrub).
type ScrubStats = shard.ScrubStats

// Scrub walks a replicated sharded deployment's whole backing
// namespace, byte-compares every key's replica copies and repairs
// divergence: missing or divergent copies are rewritten from a
// verified source, copies stranded by a missed remove are reaped, and
// copies past the true size are truncated. Run it after a shard
// outage heals to restore full replication. The mount keeps serving
// reads and writes throughout; a pass is mutually exclusive with an
// online rebalance and resumable — cancellation (honored between
// repairs) simply leaves the rest for the next pass. It requires a
// replicated sharded mount (ShardOptions.Replicas >= 2).
func (m *Mount) Scrub(ctx context.Context) (ScrubStats, error) {
	if err := m.guard("scrub", ""); err != nil {
		return ScrubStats{}, err
	}
	if m.shard == nil {
		return ScrubStats{}, errors.New("lamassu: Scrub requires a sharded mount (NewShardedStorage)")
	}
	return m.shard.Scrub(ctx)
}

// ShardRebalanceStats summarizes a RebalanceShards pass.
type ShardRebalanceStats = shard.RebalanceStats

// RebalanceShards migrates files between two sharded-storage views of
// the same deployment — the offline step behind adding or removing
// shards. Both arguments must come from NewShardedStorage (typically
// sharing the surviving underlying stores); consistent hashing keeps
// the copying proportional to the placement change, about K/N of the
// keys when one of N shards is added or removed. No Mount may be
// using either view while it runs.
//
// A deployment written with Options.EncryptNames places files by
// their PLAINTEXT names while storing them under encrypted ones, so
// its zone keys MUST be passed here — rebalancing such a store
// without them computes placement from the encrypted names and
// strands files. Plain deployments pass no keys.
func RebalanceShards(from, to Storage, encryptNamesKeys ...KeyPair) (ShardRebalanceStats, error) {
	return RebalanceShardsCtx(nil, from, to, encryptNamesKeys...)
}

// RebalanceShardsCtx is RebalanceShards honoring ctx between key
// copies: a cancellation returns ErrCanceled with the pass cut at a
// copy boundary — the crash case the idempotency contract already
// covers — and rerunning with a live context converges without
// re-copying what already landed on stores it has since left.
func RebalanceShardsCtx(ctx context.Context, from, to Storage, encryptNamesKeys ...KeyPair) (ShardRebalanceStats, error) {
	fs, ok := from.(*shard.Store)
	if !ok {
		return ShardRebalanceStats{}, errors.New("lamassu: RebalanceShards: from is not a sharded storage")
	}
	ts, ok := to.(*shard.Store)
	if !ok {
		return ShardRebalanceStats{}, errors.New("lamassu: RebalanceShards: to is not a sharded storage")
	}
	switch len(encryptNamesKeys) {
	case 0:
	case 1:
		nameKey := cryptoutil.DeriveSubKey(encryptNamesKeys[0].Outer, "lamassu-name-encryption")
		views, err := wrapShardNames(nameKey, fs, ts)
		if err != nil {
			return ShardRebalanceStats{}, err
		}
		fs, ts = views[0], views[1]
	default:
		return ShardRebalanceStats{}, errors.New("lamassu: RebalanceShards: at most one key pair")
	}
	return shard.RebalanceCtx(ctx, fs, ts)
}

// Rebalance is a handle on a running (or finished) online rebalance
// started with Mount.StartRebalance.
type Rebalance struct {
	done  chan struct{}
	stats ShardRebalanceStats
	err   error
}

// Done returns a channel closed when the mover finishes (successfully
// or not).
func (r *Rebalance) Done() <-chan struct{} { return r.done }

// Wait blocks until the mover finishes and returns its error: nil on
// a committed epoch bump, ErrCanceled if the StartRebalance context
// was canceled (the migration stays active and resumable), or the
// first backend error otherwise.
func (r *Rebalance) Wait() error {
	<-r.done
	return r.err
}

// Err returns the mover's error, or nil while it is still running.
func (r *Rebalance) Err() error {
	select {
	case <-r.done:
		return r.err
	default:
		return nil
	}
}

// Stats returns the mover's copy statistics; complete only once Done
// is closed.
func (r *Rebalance) Stats() ShardRebalanceStats {
	select {
	case <-r.done:
		return r.stats
	default:
		return ShardRebalanceStats{}
	}
}

// RebalanceStatus is a snapshot of a mount's placement epoch and — if
// one is active — its online rebalance (see Mount.RebalanceStatus).
type RebalanceStatus struct {
	// Active reports a migration in progress (dual-ring routing on);
	// MoverRunning whether its background mover is currently copying
	// (false between a crash-interrupted migration's reopen and the
	// StartRebalance call that resumes it).
	Active, MoverRunning bool
	// Epoch is the settled placement epoch being served; TargetEpoch
	// the epoch being migrated to (0 unless Active).
	Epoch, TargetEpoch uint64
	// TotalKeys is the number of placement keys (files, or stripes of
	// striped files) the migration must relocate, discovered file by
	// file as the mover walks; MovedKeys how many are confirmed so
	// far; MovedBytes the payload the mover has copied.
	TotalKeys, MovedKeys, MovedBytes int64
	// FallbackReads counts dual-ring reads served by the previous
	// epoch's owner; MirroredWrites counts writes dual-written to it.
	FallbackReads, MirroredWrites int64
}

// RebalanceStatus reports the mount's placement epoch and migration
// progress; the zero value for unsharded mounts.
func (m *Mount) RebalanceStatus() RebalanceStatus {
	if m.shard == nil {
		return RebalanceStatus{}
	}
	st := m.shard.MigrationStatus()
	return RebalanceStatus{
		Active:         st.Active,
		MoverRunning:   st.MoverRunning,
		Epoch:          st.Epoch,
		TargetEpoch:    st.TargetEpoch,
		TotalKeys:      st.TotalKeys,
		MovedKeys:      st.MovedKeys,
		MovedBytes:     st.MovedBytes,
		FallbackReads:  st.FallbackReads,
		MirroredWrites: st.MirroredWrites,
	}
}

// StartRebalance migrates a live sharded mount to a new store
// topology WITHOUT unmounting — the online counterpart of
// RebalanceShards. newStores is the complete new store list: grow by
// passing the current stores plus the new ones appended, shrink by
// passing a prefix of the current list. The mount keeps serving reads
// and writes throughout: a new placement epoch opens immediately
// (persisted on the shards), writes route by the new ring and mirror
// to the old owner until each key is confirmed, reads are served by
// the new owner once the key is confirmed and fall back to the old
// owner until then, and a background mover copies only the keys whose
// owner changed before atomically committing the epoch bump and
// retiring the old ring.
//
// Cancelling ctx stops the mover between key copies (Wait returns
// ErrCanceled) with the mount still fully consistent in dual-ring
// mode; call StartRebalance again — with the same newStores, or with
// none after reopening an interrupted deployment — to resume, and the
// rerun converges. A crash at ANY point is equally safe: the old
// epoch's copies stay complete until the commit, so the deployment
// reopens on either epoch.
//
// Returns the running migration's handle; Mount.RebalanceStatus
// reports progress. Passing no stores resumes a migration adopted at
// mount time and fails otherwise.
func (m *Mount) StartRebalance(ctx context.Context, newStores ...Storage) (*Rebalance, error) {
	if err := m.guard("rebalance", ""); err != nil {
		return nil, err
	}
	if m.shard == nil {
		return nil, errors.New("lamassu: StartRebalance requires a sharded mount (NewShardedStorage or Options.Shards)")
	}
	m.rebMu.Lock()
	defer m.rebMu.Unlock()
	if m.reb != nil {
		select {
		case <-m.reb.done:
		default:
			return nil, errors.New("lamassu: a rebalance is already running on this mount")
		}
	}
	internal, err := m.mapRebalanceStores(newStores)
	if err != nil {
		return nil, err
	}
	hooks := shard.MigrateHooks{
		Recorder:   m.rec,
		Invalidate: m.fs.InvalidateFile,
	}
	if err := m.shard.BeginMigration(ctx, internal, hooks); err != nil {
		return nil, err
	}
	// The union of both epochs absorbs commit traffic while the
	// migration runs; recarve the per-shard worker budgets over it.
	m.fs.RefreshShardBudgets()
	r := &Rebalance{done: make(chan struct{})}
	// Close cancels through this derived context so no mover outlives
	// the mount.
	moverCtx, cancel := context.WithCancel(orDefault(ctx))
	m.reb, m.rebCancel = r, cancel
	go func() {
		defer cancel()
		stats, err := m.shard.RunMover(moverCtx)
		if err == nil {
			// Epoch committed: retired shards give their budget back.
			m.fs.RefreshShardBudgets()
		}
		r.stats = ShardRebalanceStats(stats)
		r.err = err
		close(r.done)
	}()
	return r, nil
}

// orDefault maps the package's nil-context convention onto the std
// context tree so a derived cancel works.
func orDefault(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// mapRebalanceStores translates the caller's store handles into the
// mount's internal per-slot stores: handles the mount already serves
// keep their (possibly name-encryption-wrapped) internal identity,
// genuinely new stores are wrapped the same way the mount's were.
func (m *Mount) mapRebalanceStores(newStores []Storage) ([]backend.Store, error) {
	cur := m.shard.Shards()
	if len(newStores) == 0 {
		if !m.shard.Migrating() {
			return nil, errors.New("lamassu: StartRebalance with no stores resumes an interrupted migration; none is active")
		}
		return cur, nil
	}
	wrap := func(st backend.Store) backend.Store {
		if m.wrapped == nil {
			m.wrapped = make(map[backend.Store]backend.Store)
		}
		w, ok := m.wrapped[st]
		if !ok {
			w = m.wrapStore(st)
			m.wrapped[st] = w
		}
		return w
	}
	// A user handle the mount ALREADY serves must map to the same
	// internal store object in every slot: the shard layer's move and
	// reap decisions compare stores by identity, and a second wrapper
	// around one physical store would read as a distinct shard whose
	// "stale" copies are removable. Carve-mode grows (the same store
	// handle repeated into new slots) depend on this.
	existing := func(st backend.Store) (backend.Store, bool) {
		for j, u := range m.shardUser {
			if u == st && j < len(cur) {
				return cur[j], true
			}
		}
		return nil, false
	}
	internal := make([]backend.Store, len(newStores))
	for i, st := range newStores {
		switch {
		case i < len(m.shardUser) && st == m.shardUser[i]:
			if i < len(cur) {
				internal[i] = cur[i]
			} else {
				// Resuming a shrink adopted at mount time: the slot sits
				// beyond the target list; BeginMigration revalidates.
				internal[i] = wrap(st)
			}
		case i < len(m.shardUser):
			return nil, fmt.Errorf("lamassu: StartRebalance store %d differs from the mounted deployment; grow appends stores, shrink removes a suffix", i)
		default:
			if in, ok := existing(st); ok {
				internal[i] = in
			} else {
				internal[i] = wrap(st)
			}
		}
	}
	return internal, nil
}

// wrapShardNames rebuilds sharded views with name encryption pushed
// inside each shard; see wrapShardLeaves for the identity contract.
func wrapShardNames(nameKey Key, views ...*shard.Store) ([]*shard.Store, error) {
	return wrapShardLeaves(func(st backend.Store) backend.Store {
		return namecrypt.New(st, nameKey)
	}, views...)
}

// wrapShardLeaves rebuilds sharded views with wrap applied to each
// leaf store — the layout NewMount uses for EncryptNames and
// WithRetry, so the sharding seam stays outermost (budgets, read
// fan-out, ShardStats) while the wrappers sit on the physical stores.
// Slots and views sharing one physical store share ONE wrapper: the
// shard layer's no-move and stale-copy decisions compare stores by
// identity, and distinct wrappers around the same store would make
// Rebalance treat an owner as removable.
func wrapShardLeaves(wrap func(backend.Store) backend.Store, views ...*shard.Store) ([]*shard.Store, error) {
	wrapped := make(map[backend.Store]backend.Store)
	out := make([]*shard.Store, len(views))
	for vi, ss := range views {
		stores := ss.Shards()
		for i, st := range stores {
			w, ok := wrapped[st]
			if !ok {
				w = wrap(st)
				wrapped[st] = w
			}
			stores[i] = w
		}
		ns, err := shard.New(stores, shard.Config{
			Vnodes:      ss.Ring().Vnodes(),
			StripeBytes: ss.StripeBytes(),
			Replicas:    ss.Replicas(),
		})
		if err != nil {
			return nil, err
		}
		out[vi] = ns
	}
	return out, nil
}

// NewDirStorage returns a backing store over a directory of real
// files; the encrypted backing files in it can be copied, replicated
// or migrated with ordinary tools.
func NewDirStorage(dir string) (Storage, error) { return backend.NewOSStore(dir) }

// NFSParams tunes the simulated NFS link of WithSimulatedNFS.
type NFSParams struct {
	// RTT is the per-operation round trip; WriteRTT (if nonzero)
	// overrides it for writes.
	RTT, WriteRTT time.Duration
	// BandwidthBytesPerSec is the wire bandwidth.
	BandwidthBytesPerSec float64
	// TailEvery, when > 0, makes every TailEvery-th operation a tail
	// event whose latency is multiplied by TailMult — a deterministic
	// two-point tail distribution, the workload hedged reads
	// (WithHedgedReads) are built to cut. Zero keeps the historical
	// fixed-latency link.
	TailEvery int
	// TailMult is the tail event's latency multiplier; values <= 1
	// disable the tail.
	TailMult float64
}

// WithSimulatedNFS wraps a backing store with the latency and
// bandwidth model of a synchronous NFSv3 mount over Gigabit Ethernet
// (the remote-filer configuration of the paper's Figure 7). Passing a
// zero NFSParams selects the calibrated GbE defaults. Waits are real
// (wall-clock); the benchmark harness uses the internal virtual-clock
// variant instead.
func WithSimulatedNFS(store Storage, p NFSParams) Storage {
	params := nfssim.GigabitNFS()
	if p.RTT != 0 {
		params.RTT = p.RTT
	}
	if p.WriteRTT != 0 {
		params.WriteRTT = p.WriteRTT
	}
	if p.BandwidthBytesPerSec != 0 {
		params.Bandwidth = p.BandwidthBytesPerSec
	}
	params.TailEvery = p.TailEvery
	params.TailMult = p.TailMult
	return nfssim.New(store, params, simclock.Real{})
}

// Copy streams a file between two mounts (or any two vfs.FS views),
// e.g. from a plaintext staging area into a Lamassu mount.
func Copy(dst *Mount, dstName string, src *Mount, srcName string) (int64, error) {
	return vfs.Copy(dst.fs, dstName, src.fs, srcName, 1<<20)
}

// NewDupLESSKeySource starts talking to a DupLESS-style key server
// (see internal/dupless and the server-aided-keys example) and returns
// a KeyDeriver for Options plus a close function. Each derived key
// costs one blind-signature round trip — the configuration the paper
// discusses and rejects for block-level use (§1); it is provided for
// the ablation that quantifies that choice.
func NewDupLESSKeySource(serverAddr string) (func(hash [32]byte) (Key, error), func() error, error) {
	nc, err := dupless.Dial(serverAddr)
	if err != nil {
		return nil, nil, err
	}
	deriver := func(h [32]byte) (Key, error) { return nc.DeriveKey(cryptoutil.Hash(h)) }
	return deriver, nc.Close, nil
}

// TrustStore records whole-file MACs outside the untrusted storage
// for rollback detection (paper §2.5's proposed integrity layer).
type TrustStore = integrity.TrustStore

// NewMemTrustStore returns an in-memory TrustStore.
func NewMemTrustStore() TrustStore { return integrity.NewMemTrustStore() }

// RollbackGuard is the stackable whole-file integrity layer over a
// Mount: opening a file verifies its complete content against the
// trust store, so even a rollback to an older self-consistent state
// is detected — the attack the base system cannot see (§2.5).
type RollbackGuard struct {
	fs *integrity.FS
}

// WithRollbackProtection layers rollback detection over a mount. The
// MAC key is derived from the zone's outer key; trust must live
// somewhere the storage system cannot write (memory, a local file, or
// the key server).
func WithRollbackProtection(m *Mount, keys KeyPair, trust TrustStore) (*RollbackGuard, error) {
	macKey := cryptoutil.DeriveSubKey(keys.Outer, "lamassu-rollback-mac")
	fs, err := integrity.New(m.fs, trust, macKey)
	if err != nil {
		return nil, err
	}
	return &RollbackGuard{fs: fs}, nil
}

// Create opens name read-write, creating it if absent.
func (g *RollbackGuard) Create(name string) (File, error) { return g.fs.Create(name) }

// Open opens read-only, verifying the whole file against the trust
// store first.
func (g *RollbackGuard) Open(name string) (File, error) { return g.fs.Open(name) }

// OpenRW opens read-write, verifying first.
func (g *RollbackGuard) OpenRW(name string) (File, error) { return g.fs.OpenRW(name) }

// Remove deletes the file and its trust record.
func (g *RollbackGuard) Remove(name string) error { return g.fs.Remove(name) }

// WriteFile writes data as the complete content of name.
func (g *RollbackGuard) WriteFile(name string, data []byte) error {
	return vfs.WriteAll(g.fs, name, data)
}

// ReadFile reads and verifies the complete content of name.
func (g *RollbackGuard) ReadFile(name string) ([]byte, error) {
	return vfs.ReadAll(g.fs, name)
}

// VerifyAll audits every tracked file, returning the names that fail.
func (g *RollbackGuard) VerifyAll() ([]string, error) { return g.fs.VerifyAll() }

// ErrRollback reports a file that no longer matches its trusted
// state.
var ErrRollback = integrity.ErrRollback

// Replicate copies every backing file from src to dst byte-for-byte.
// This is the portability property the paper's embedded-metadata
// design buys (§1): because the cryptographic metadata travels inside
// each file's data stream, an encrypted volume can be replicated,
// migrated or backed up by ANY tool that copies files — no key
// database to move in parallel, no storage-controller support needed.
// The function itself needs no keys; it never decrypts anything. It
// returns the number of files copied.
func Replicate(dst, src Storage) (int, error) {
	names, err := src.List()
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 1<<20)
	for i, name := range names {
		if err := replicateFile(dst, src, name, buf); err != nil {
			return i, fmt.Errorf("lamassu: replicating %q: %w", name, err)
		}
	}
	return len(names), nil
}

func replicateFile(dst, src Storage, name string, buf []byte) error {
	in, err := src.Open(name, backend.OpenRead)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := dst.Open(name, backend.OpenCreate)
	if err != nil {
		return err
	}
	defer out.Close()
	size, err := in.Size()
	if err != nil {
		return err
	}
	if err := out.Truncate(size); err != nil {
		return err
	}
	var off int64
	for off < size {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if err := backend.ReadFull(in, buf[:n], off); err != nil {
			return err
		}
		if _, err := out.WriteAt(buf[:n], off); err != nil {
			return err
		}
		off += n
	}
	return out.Sync()
}

// IsNotExist reports whether err indicates a missing file.
func IsNotExist(err error) bool { return errors.Is(err, vfs.ErrNotExist) }

// IsIntegrityError reports whether err indicates failed integrity
// verification.
func IsIntegrityError(err error) bool { return errors.Is(err, core.ErrIntegrity) }

// Validate returns a human-readable summary of the mount's geometry,
// useful for logs.
func (m *Mount) String() string {
	g := m.fs.Geometry()
	return fmt.Sprintf("lamassu(block=%dB, R=%d, keys/segment=%d, min-overhead=%.2f%%, integrity=%s)",
		g.BlockSize, g.Reserved, g.KeysPerSegment(), 100*g.MinOverheadRatio(), m.fs.Integrity())
}
