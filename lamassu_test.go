package lamassu

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"lamassu/internal/dedupe"
	"lamassu/internal/kmip"
)

func mustKeys(t *testing.T) KeyPair {
	t.Helper()
	keys, err := GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestPublicQuickstart(t *testing.T) {
	keys := mustKeys(t)
	m, err := NewMount(NewMemStorage(), keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, deduplicating world")
	if err := m.WriteFile("hello.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("hello.txt")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	if sz, err := m.Stat("hello.txt"); err != nil || sz != int64(len(data)) {
		t.Fatalf("Stat = %d, %v", sz, err)
	}
	names, err := m.List()
	if err != nil || len(names) != 1 || names[0] != "hello.txt" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := m.Remove("hello.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("hello.txt"); !IsNotExist(err) {
		t.Fatalf("after remove: %v", err)
	}
}

func TestKeysFromBytes(t *testing.T) {
	in := bytes.Repeat([]byte{1}, 32)
	out := bytes.Repeat([]byte{2}, 32)
	kp, err := KeysFromBytes(in, out)
	if err != nil {
		t.Fatal(err)
	}
	if kp.Inner.IsZero() || kp.Outer.IsZero() {
		t.Fatal("keys zero")
	}
	if _, err := KeysFromBytes(in[:31], out); err == nil {
		t.Fatal("short inner accepted")
	}
	if _, err := KeysFromBytes(in, out[:31]); err == nil {
		t.Fatal("short outer accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	keys := mustKeys(t)
	m, err := NewMount(NewMemStorage(), keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	for _, want := range []string{"block=4096B", "R=8", "keys/segment=118", "integrity=full"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	ratio := m.MinOverheadRatio()
	if ratio < 0.0084 || ratio > 0.0086 {
		t.Errorf("MinOverheadRatio = %v", ratio)
	}
	// Overhead for one full segment: exactly one metadata block.
	if got := m.SpaceOverhead(118 * 4096); got != 4096 {
		t.Errorf("SpaceOverhead = %d", got)
	}
	// Bad options are rejected.
	if _, err := NewMount(NewMemStorage(), keys, &Options{BlockSize: 100}); err == nil {
		t.Errorf("bad block size accepted")
	}
	if _, err := NewMount(NewMemStorage(), keys, &Options{ReservedSlots: 999}); err == nil {
		t.Errorf("bad reserved slots accepted")
	}
	// MountFS alias works.
	if _, err := MountFS(NewMemStorage(), keys, nil); err != nil {
		t.Errorf("MountFS: %v", err)
	}
}

func TestDedupAcrossMountsSharedZone(t *testing.T) {
	store := NewMemStorage()
	keys := mustKeys(t)
	m1, err := NewMount(store, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMount(store, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xEF}, 64*4096)
	if err := m1.WriteFile("a", payload); err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteFile("b", payload); err != nil {
		t.Fatal(err)
	}
	e, _ := dedupe.NewEngine(4096)
	rep, err := e.Scan(store)
	if err != nil {
		t.Fatal(err)
	}
	// 64 identical plaintext blocks per file converge to 1 ciphertext
	// block shared across mounts; 2 metadata blocks remain unique.
	if rep.UniqueBlocks != 3 {
		t.Fatalf("UniqueBlocks = %d, want 3", rep.UniqueBlocks)
	}
}

func TestLatencyCollection(t *testing.T) {
	keys := mustKeys(t)
	m, err := NewMount(NewMemStorage(), keys, &Options{CollectLatency: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("f", bytes.Repeat([]byte{1}, 64*4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("f"); err != nil {
		t.Fatal(err)
	}
	slices := m.Latency()
	if len(slices) != 5 {
		t.Fatalf("latency slices = %d", len(slices))
	}
	var total float64
	seen := map[string]bool{}
	for _, s := range slices {
		total += s.Fraction
		seen[s.Category] = true
	}
	for _, c := range []string{"Encrypt", "Decrypt", "GetCEKey", "I/O", "Misc."} {
		if !seen[c] {
			t.Errorf("category %q missing", c)
		}
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("fractions sum to %v", total)
	}
	m.ResetLatency()
	for _, s := range m.Latency() {
		if s.Total != 0 {
			t.Errorf("reset left %v in %s", s.Total, s.Category)
		}
	}

	// Without CollectLatency, Latency is nil and Reset is a no-op.
	m2, _ := NewMount(NewMemStorage(), keys, nil)
	if m2.Latency() != nil {
		t.Errorf("latency collected without opt-in")
	}
	m2.ResetLatency()
}

func TestCheckRecoverRekeyThroughPublicAPI(t *testing.T) {
	store := NewMemStorage()
	keys := mustKeys(t)
	m, err := NewMount(store, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, 200*4096)
	if err := m.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Check("f")
	if err != nil || !rep.Clean() {
		t.Fatalf("Check: %+v, %v", rep, err)
	}
	st, err := m.Recover("f")
	if err != nil || st.Repaired != 0 {
		t.Fatalf("Recover: %+v, %v", st, err)
	}

	// Partial rekey.
	newKeys := mustKeys(t)
	if _, err := m.RekeyOuter("f", newKeys.Outer); err != nil {
		t.Fatal(err)
	}
	rotated, err := NewMount(store, KeyPair{Inner: keys.Inner, Outer: newKeys.Outer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rotated.ReadFile("f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after outer rekey: %v", err)
	}

	// Full rekey.
	if _, err := rotated.RekeyFull("f", newKeys); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewMount(store, newKeys, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err = fresh.ReadFile("f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after full rekey: %v", err)
	}
}

func TestIntegrityErrorSurfaced(t *testing.T) {
	store := NewMemStorage()
	keys := mustKeys(t)
	m, err := NewMount(store, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("f", bytes.Repeat([]byte{9}, 8192)); err != nil {
		t.Fatal(err)
	}
	// Corrupt a data-block byte directly on the backing store.
	bf, err := store.Open("f", 1 /* backend.OpenWrite */)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bf.WriteAt([]byte{0xFF}, 5000); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	_, err = m.ReadFile("f")
	if !IsIntegrityError(err) {
		t.Fatalf("corrupted read: %v", err)
	}
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("error identity lost: %v", err)
	}
}

func TestDirStorage(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := mustKeys(t)
	m, err := NewMount(store, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x31}, 130*4096+17)
	if err := m.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	// A second mount over the same directory reads it back.
	store2, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMount(store2, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.ReadFile("f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cross-process read: %v", err)
	}
}

func TestCopyBetweenMounts(t *testing.T) {
	keys := mustKeys(t)
	src, _ := NewMount(NewMemStorage(), keys, nil)
	dst, _ := NewMount(NewMemStorage(), keys, nil)
	data := bytes.Repeat([]byte{0x77}, 300000)
	if err := src.WriteFile("s", data); err != nil {
		t.Fatal(err)
	}
	n, err := Copy(dst, "d", src, "s")
	if err != nil || n != int64(len(data)) {
		t.Fatalf("Copy = %d, %v", n, err)
	}
	got, err := dst.ReadFile("d")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("copied content: %v", err)
	}
}

func TestFetchKeysFromServer(t *testing.T) {
	srv := kmip.NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	k1, err := FetchKeys(ln.Addr().String(), 42)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := FetchKeys(ln.Addr().String(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Inner.Equal(k2.Inner) || !k1.Outer.Equal(k2.Outer) {
		t.Fatalf("same zone returned different keys")
	}
	other, err := FetchKeys(ln.Addr().String(), 43)
	if err != nil {
		t.Fatal(err)
	}
	if other.Inner.Equal(k1.Inner) {
		t.Fatalf("different zones share inner key")
	}
	// The fetched keys actually work.
	m, err := NewMount(NewMemStorage(), k1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("f", []byte("via kmip")); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedNFSStorage(t *testing.T) {
	store := WithSimulatedNFS(NewMemStorage(), NFSParams{})
	keys := mustKeys(t)
	m, err := NewMount(store, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("f", []byte("over simulated nfs")); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("f")
	if err != nil || string(got) != "over simulated nfs" {
		t.Fatalf("NFS round trip: %q, %v", got, err)
	}
	// Custom params are honored (no crash; semantics identical).
	store2 := WithSimulatedNFS(NewMemStorage(), NFSParams{RTT: 1, WriteRTT: 1, BandwidthBytesPerSec: 1e9})
	m2, _ := NewMount(store2, keys, nil)
	if err := m2.WriteFile("g", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestFilePositionalIO(t *testing.T) {
	keys := mustKeys(t)
	m, _ := NewMount(NewMemStorage(), keys, nil)
	f, err := m.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(buf) != "abc" {
		t.Fatalf("buf = %q", buf)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}
