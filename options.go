package lamassu

// Functional options — the API v2 construction surface.
//
//	m, err := lamassu.New(store, keys,
//		lamassu.WithShards(8),
//		lamassu.WithCache(4096),
//		lamassu.WithParallelism(0), // GOMAXPROCS
//	)
//
// Every option corresponds to one field of the legacy Options struct,
// which remains supported through NewMount as a thin compatibility
// adapter (NewMount(store, keys, opts) == New(store, keys,
// WithOptions(opts))). New code should prefer New: options compose,
// are impossible to zero-value by accident, and let the surface grow
// without breaking callers.

// Option configures a Mount at construction.
type Option func(*Options)

// WithOptions applies a whole legacy Options struct (nil is a no-op).
// It is the bridge between the two construction styles; options to the
// right of it override the fields it set.
func WithOptions(opts *Options) Option {
	return func(o *Options) {
		if opts != nil {
			*o = *opts
		}
	}
}

// WithBlockSize sets the cipher/layout block size in bytes (default
// 4096, the paper's configuration).
func WithBlockSize(bytes int) Option {
	return func(o *Options) { o.BlockSize = bytes }
}

// WithReservedSlots sets R, the transient key slots per metadata block
// (default 8; see Figures 10 and 11 for the space/batching trade).
func WithReservedSlots(r int) Option {
	return func(o *Options) { o.ReservedSlots = r }
}

// WithIntegrity selects the read-path integrity level (default
// IntegrityFull).
func WithIntegrity(level Integrity) Option {
	return func(o *Options) { o.Integrity = level }
}

// WithLatencyCollection enables the Figure 9 latency-breakdown
// instrumentation (Mount.Latency, Mount.EngineStats).
func WithLatencyCollection() Option {
	return func(o *Options) { o.CollectLatency = true }
}

// WithEncryptedNames additionally encrypts file and directory names on
// the backing store (the §2.1 extension).
func WithEncryptedNames() Option {
	return func(o *Options) { o.EncryptNames = true }
}

// WithKeyDeriver replaces the local convergent KDF with an external
// derivation such as the DupLESS server-aided OPRF.
func WithKeyDeriver(derive func(hash [32]byte) (Key, error)) Option {
	return func(o *Options) { o.KeyDeriver = derive }
}

// WithParallelism bounds the per-block commit worker pool; 0 selects
// GOMAXPROCS, 1 forces the paper's fully serial engine.
func WithParallelism(workers int) Option {
	return func(o *Options) { o.Parallelism = workers }
}

// WithCache sizes the per-mount LRU cache of verified plaintext and
// decoded metadata blocks, in blocks; 0 (the default) disables it.
func WithCache(blocks int) Option {
	return func(o *Options) { o.CacheBlocks = blocks }
}

// WithoutCoalescing restores the paper's per-block I/O engine (one
// backend call per block) for A/B measurement and paper-exact cost
// accounting.
func WithoutCoalescing() Option {
	return func(o *Options) { o.DisableCoalescing = true }
}

// WithReadahead arms the sequential-read detector to prefetch the next
// n blocks into the cache; requires WithCache.
func WithReadahead(blocks int) Option {
	return func(o *Options) { o.Readahead = blocks }
}

// WithShards carves the provided store into n logical shards behind a
// consistent-hash placement map (byte-identical layout at any n). For
// sharding across genuinely separate backends use NewShardedStorage
// and no WithShards.
func WithShards(n int) Option {
	return func(o *Options) { o.Shards = n }
}

// WithReplication asserts the mounted deployment's replication factor
// (the factor itself is configured where the topology is built:
// ShardOptions.Replicas in NewShardedStorage). The mount fails unless
// the sharded store it is given maintains exactly r copies of every
// key — a guard against mounting an R-way deployment through a path
// that dropped the factor.
func WithReplication(r int) Option {
	return func(o *Options) { o.Replicas = r }
}

// WithShardVnodes overrides the virtual-node count per shard on the
// placement ring (default 64). The value is part of the placement and
// must be stable across opens.
func WithShardVnodes(vnodes int) Option {
	return func(o *Options) { o.ShardVnodes = vnodes }
}

// WithLayoutEpoch asserts the sharded deployment's placement epoch at
// mount time: the mount fails unless the layout record persisted on
// the shards settles at exactly this epoch — a guard against mounting
// a rebalanced deployment with a stale store list.
func WithLayoutEpoch(epoch uint64) Option {
	return func(o *Options) { o.LayoutEpoch = epoch }
}

// WithoutLayoutAdoption skips reading the persisted layout record
// when mounting a sharded store — an escape hatch for byte-exact
// store inspection. Do not use it on deployments that rebalance
// online.
func WithoutLayoutAdoption() Option {
	return func(o *Options) { o.DisableLayoutAdoption = true }
}

// WithRetry wraps the backing store (every shard of a sharded
// deployment) with bounded retry of transient backend failures, per
// policy. Retryable errors (see IsRetryable) are re-issued with
// capped exponential backoff; fatal errors — cancellation included —
// surface immediately. The zero policy selects the defaults.
func WithRetry(policy RetryPolicy) Option {
	return func(o *Options) { o.Retry = &policy }
}

// WithIOWindow bounds the number of backend I/O operations the engine
// keeps in flight at once, independent of WithParallelism's CPU
// budget — the pipelining knob for high-latency stores, where the
// useful request depth is set by the link rather than by core count.
// 0 (the default) keeps backend concurrency on the worker pool; 1
// serializes backend I/O, the A/B baseline. The §2.4 barriers are
// unchanged at any setting.
func WithIOWindow(n int) Option {
	return func(o *Options) { o.IOWindow = n }
}

// WithHedgedReads wraps every physical backing store with adaptive
// hedged reads: a read outstanding longer than a high quantile of the
// store's observed read latency is duplicated, the first usable
// response wins, and the loser is canceled through its context. Reads
// only — writes and the §2.4 commit protocol are untouched. The zero
// policy selects the adaptive defaults.
func WithHedgedReads(policy HedgePolicy) Option {
	return func(o *Options) { o.Hedge = &policy }
}

// WithCompression enables deterministic per-block compression in the
// encode path: blocks are compressed with pinned encoder settings,
// then encrypted under the convergent key of the RAW plaintext — so
// deduplication of identical plaintext is preserved — and stored as a
// prefix of their fixed block slot, shrinking the bytes each backend
// read and write moves. Incompressible blocks escape to verbatim
// storage and never cost more than today. Off by default; see
// Options.Compression for the compatibility contract.
func WithCompression() Option {
	return func(o *Options) { o.Compression = true }
}

// New opens a Lamassu file system over store with the given zone keys,
// configured by functional options. With no options it selects the
// paper's defaults (4096-byte blocks, R = 8, full integrity, coalesced
// I/O, no cache, no sharding).
func New(store Storage, keys KeyPair, opts ...Option) (*Mount, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return NewMount(store, keys, &o)
}
