package lamassu

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"lamassu/internal/backend"
)

// rebalanceFixture mounts a 2-shard striped deployment with a few
// files written, returning the mount, its stores and the plaintext
// model.
func rebalanceFixture(t *testing.T, keys KeyPair) (*Mount, []Storage, map[string][]byte) {
	t.Helper()
	stripe, err := SegmentStripeBytes(nil, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	stores := []Storage{NewMemStorage(), NewMemStorage()}
	storage, err := NewShardedStorage(stores, &ShardOptions{StripeBytes: stripe})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(storage, keys, WithParallelism(4), WithLatencyCollection())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	contents := map[string][]byte{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("f%d", i)
		data := make([]byte, i*150000)
		rng.Read(data)
		if err := m.WriteFile(name, data); err != nil {
			t.Fatal(err)
		}
		contents[name] = data
	}
	return m, stores, contents
}

// The public acceptance path: a mount serving concurrent reads and
// writes throughout StartRebalance (grow 2 -> 3 shards) returns
// byte-identical data before, during, and after the migration; the
// epoch commits; and the deployment reopens at the new epoch — with
// WithLayoutEpoch catching stale topologies.
func TestMountStartRebalanceGrow(t *testing.T) {
	keys := mustKeys(t)
	m, stores, contents := rebalanceFixture(t, keys)

	if st := m.RebalanceStatus(); st.Active || st.Epoch != 0 {
		t.Fatalf("pre-rebalance status %+v", st)
	}

	// Concurrent readers hammer the mount for the whole migration; a
	// writer keeps overwriting one file's first block (tracked in
	// mu-guarded model state).
	var (
		mu      sync.Mutex
		stop    = make(chan struct{})
		readers sync.WaitGroup
		rerrs   = make(chan error, 4)
	)
	snapshot := func(name string) []byte {
		mu.Lock()
		defer mu.Unlock()
		return append([]byte(nil), contents[name]...)
	}
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("f%d", 1+(i+w)%5)
				want := snapshot(name)
				got, err := m.ReadFile(name)
				if err != nil {
					rerrs <- fmt.Errorf("read %s: %w", name, err)
					return
				}
				// The writer may have raced ahead of our snapshot; accept
				// the current model instead before declaring divergence.
				if !bytes.Equal(got, want) && !bytes.Equal(got, snapshot(name)) {
					rerrs <- fmt.Errorf("%s diverged during migration", name)
					return
				}
			}
		}(w)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		rng := rand.New(rand.NewSource(11))
		blk := make([]byte, 4096)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rng.Read(blk)
			f, err := m.OpenRW("f5")
			if err != nil {
				rerrs <- err
				return
			}
			mu.Lock()
			if _, err := f.WriteAt(blk, 0); err != nil {
				mu.Unlock()
				f.Close()
				rerrs <- err
				return
			}
			copy(contents["f5"][:4096], blk)
			mu.Unlock()
			if err := f.Close(); err != nil {
				rerrs <- err
				return
			}
		}
	}()

	third := NewMemStorage()
	reb, err := m.StartRebalance(context.Background(), stores[0], stores[1], third)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartRebalance(context.Background(), stores[0], stores[1], third); err == nil {
		t.Fatal("second StartRebalance while one is running succeeded")
	}
	if err := reb.Wait(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	close(stop)
	readers.Wait()
	select {
	case err := <-rerrs:
		t.Fatal(err)
	default:
	}

	st := m.RebalanceStatus()
	if st.Active || st.Epoch != 1 {
		t.Fatalf("post-rebalance status %+v", st)
	}
	if reb.Stats().MovedStripes == 0 {
		t.Fatal("rebalance moved nothing")
	}
	if ss := m.ShardStats(); len(ss) != 3 {
		t.Fatalf("ShardStats reports %d shards after grow", len(ss))
	}
	for name, want := range contents {
		got, err := m.ReadFile(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s after migration: %d bytes, %v", name, len(got), err)
		}
	}
	// The new shard actually holds data.
	names, err := third.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("new shard holds nothing after the grow")
	}

	// Reopen at the committed epoch; assert it via WithLayoutEpoch.
	stripe, _ := SegmentStripeBytes(nil, 1<<16)
	reopenStorage := func() Storage {
		s, err := NewShardedStorage([]Storage{stores[0], stores[1], third}, &ShardOptions{StripeBytes: stripe})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	m2, err := New(reopenStorage(), keys, WithLayoutEpoch(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := m2.RebalanceStatus(); st.Epoch != 1 || st.Active {
		t.Fatalf("reopen status %+v", st)
	}
	for name, want := range contents {
		got, err := m2.ReadFile(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s after reopen: %d bytes, %v", name, len(got), err)
		}
	}
	if _, err := New(reopenStorage(), keys, WithLayoutEpoch(7)); err == nil {
		t.Fatal("WithLayoutEpoch(7) accepted an epoch-1 deployment")
	}
	// A stale 2-store open is rejected outright (the record pins 3).
	staleStorage, err := NewShardedStorage([]Storage{stores[0], stores[1]}, &ShardOptions{StripeBytes: stripe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(staleStorage, keys); err == nil {
		t.Fatal("mounting the rebalanced deployment with 2 stores succeeded")
	}
	if _, err := New(staleStorage, keys, WithoutLayoutAdoption()); err != nil {
		t.Fatalf("WithoutLayoutAdoption escape hatch failed: %v", err)
	}
}

// Cancelling StartRebalance stops the mover at a copy boundary with
// the mount still serving (dual-ring), and a second StartRebalance
// with the same target resumes and converges.
func TestMountStartRebalanceCancelResume(t *testing.T) {
	keys := mustKeys(t)
	m, stores, contents := rebalanceFixture(t, keys)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Growth moves keys only onto the new shard, so counting its
	// writes (via the apiv2 cancellation fixture) interrupts the mover
	// partway deterministically.
	cs := &cancelAfterStore{inner: backend.NewMemStore()}
	cs.arm(2, cancel)
	third := Storage(cs)
	reb, err := m.StartRebalance(ctx, stores[0], stores[1], third)
	if err != nil {
		t.Fatal(err)
	}
	if err := reb.Wait(); !IsCanceled(err) {
		t.Fatalf("canceled rebalance returned %v", err)
	}
	st := m.RebalanceStatus()
	if !st.Active || st.MoverRunning || st.TargetEpoch != 1 {
		t.Fatalf("status after cancel %+v", st)
	}
	// Still serving everything mid-migration.
	for name, want := range contents {
		got, err := m.ReadFile(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s mid-migration: %v", name, err)
		}
	}
	// Resume with the same target and converge.
	reb2, err := m.StartRebalance(context.Background(), stores[0], stores[1], third)
	if err != nil {
		t.Fatal(err)
	}
	if err := reb2.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := m.RebalanceStatus(); st.Active || st.Epoch != 1 {
		t.Fatalf("status after resume %+v", st)
	}
	for name, want := range contents {
		got, err := m.ReadFile(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s after resume: %v", name, err)
		}
	}
}

// Close waits out a running (here: already-interrupted) rebalance
// mover, so no background goroutine of the mount outlives it.
func TestCloseStopsRebalance(t *testing.T) {
	keys := mustKeys(t)
	m, stores, _ := rebalanceFixture(t, keys)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cs := &cancelAfterStore{inner: backend.NewMemStore()}
	cs.arm(2, cancel)
	reb, err := m.StartRebalance(ctx, stores[0], stores[1], Storage(cs))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Close returned, so the mover is done; its outcome is recorded.
	select {
	case <-reb.Done():
	default:
		t.Fatal("Close returned with the mover still running")
	}
	if err := reb.Err(); err != nil && !IsCanceled(err) {
		t.Fatalf("mover error after Close: %v", err)
	}
}

// Growing a CARVED mount online repeats the same physical store into
// new slots; every slot must resolve to the mount's ONE internal
// store object (regression: with EncryptNames the appended slot got a
// fresh namecrypt wrapper, so identity-based reaping saw a "foreign"
// store and deleted every relocated file — silent data loss).
func TestCarveGrowOnline(t *testing.T) {
	keys := mustKeys(t)
	for _, encNames := range []bool{false, true} {
		t.Run(fmt.Sprintf("encryptNames=%v", encNames), func(t *testing.T) {
			store := NewMemStorage()
			opts := []Option{WithShards(2)}
			if encNames {
				opts = append(opts, WithEncryptedNames())
			}
			m, err := New(store, keys, opts...)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(13))
			model := map[string][]byte{}
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("c%d", i)
				data := make([]byte, 120000*i)
				rng.Read(data)
				if err := m.WriteFile(name, data); err != nil {
					t.Fatal(err)
				}
				model[name] = data
			}
			reb, err := m.StartRebalance(context.Background(), store, store, store)
			if err != nil {
				t.Fatal(err)
			}
			if err := reb.Wait(); err != nil {
				t.Fatal(err)
			}
			if st := m.RebalanceStatus(); st.Epoch != 1 || st.Active {
				t.Fatalf("status after carve grow %+v", st)
			}
			for name, want := range model {
				got, err := m.ReadFile(name)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("%s after carve grow: %d bytes, %v", name, len(got), err)
				}
			}
		})
	}
}

func TestStartRebalanceErrors(t *testing.T) {
	keys := mustKeys(t)
	// Unsharded mounts cannot rebalance online.
	m, err := New(NewMemStorage(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartRebalance(context.Background(), NewMemStorage()); err == nil {
		t.Fatal("StartRebalance on an unsharded mount succeeded")
	}
	// Resume-with-no-stores requires an interrupted migration.
	sm, stores, _ := rebalanceFixture(t, keys)
	if _, err := sm.StartRebalance(context.Background()); err == nil {
		t.Fatal("StartRebalance() with no stores and no migration succeeded")
	}
	// Replacing a store mid-list violates the grow/shrink contract.
	if _, err := sm.StartRebalance(context.Background(), stores[0], NewMemStorage(), NewMemStorage()); err == nil {
		t.Fatal("StartRebalance with a swapped store succeeded")
	}
	// LayoutEpoch on an unsharded store is rejected.
	if _, err := New(NewMemStorage(), keys, WithLayoutEpoch(1)); err == nil {
		t.Fatal("WithLayoutEpoch on an unsharded store succeeded")
	}
	// A closed mount refuses.
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sm.StartRebalance(context.Background(), stores[0], stores[1], NewMemStorage()); !IsClosed(err) {
		t.Fatalf("closed mount StartRebalance: %v", err)
	}
}

// The public File gained TruncateCtx and CloseCtx (closing the
// ROADMAP open item): live contexts behave exactly like the plain
// calls, dead contexts return ErrCanceled without performing backend
// work (and CloseCtx still releases the handle).
func TestFileTruncateCloseCtx(t *testing.T) {
	keys := mustKeys(t)
	m, err := New(NewMemStorage(), keys)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 20000)
	rand.New(rand.NewSource(5)).Read(data)
	if err := m.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	f, err := m.OpenRW("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.TruncateCtx(canceled, 100); !errors.Is(err, ErrCanceled) {
		t.Fatalf("TruncateCtx(dead ctx) = %v", err)
	}
	if sz, err := f.Size(); err != nil || sz != int64(len(data)) {
		t.Fatalf("size changed by canceled truncate: %d, %v", sz, err)
	}
	if err := f.TruncateCtx(context.Background(), 12288); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("f")
	if err != nil || !bytes.Equal(got, data[:12288]) {
		t.Fatalf("after TruncateCtx: %d bytes, %v", len(got), err)
	}

	// CloseCtx under a dead context still releases the handle; staged
	// data is simply not flushed (crash-equivalent).
	f2, err := m.OpenRW("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.CloseCtx(canceled); err == nil || !errors.Is(err, ErrCanceled) {
		// A handle with nothing staged may legitimately return nil;
		// accept both but the handle must be closed either way.
		_ = err
	}
	if _, err := f2.ReadAt(make([]byte, 1), 0); !IsClosed(err) {
		t.Fatalf("handle usable after CloseCtx(dead ctx): %v", err)
	}

	// Sanity: backend-visible truncate works through a sharded mount's
	// routed handles too.
	sm, _, contents := rebalanceFixture(t, keys)
	sf, err := sm.OpenRW("f5")
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.TruncateCtx(context.Background(), 4096); err != nil {
		t.Fatal(err)
	}
	if err := sf.CloseCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err = sm.ReadFile("f5")
	if err != nil || !bytes.Equal(got, contents["f5"][:4096]) {
		t.Fatalf("sharded TruncateCtx: %d bytes, %v", len(got), err)
	}
}
