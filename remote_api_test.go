package lamassu

// Public-surface acceptance tests for the remote object backend: the
// §2.4 crash-consistency argument must survive the trip through the
// object protocol (multipart staging, atomic Complete) with the I/O
// window pipelining dispatched writes, and hedged reads must be
// invisible to server state — a canceled loser leaves nothing behind.

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"lamassu/internal/backend"
	"lamassu/internal/backend/objstore"
	"lamassu/internal/simclock"
)

// newObjStore builds a zero-latency in-memory object store plus its
// server handle for state inspection.
func newObjStore() (*objstore.Memserver, backend.Store) {
	srv := objstore.NewMemserver(objstore.ServerParams{}, simclock.NewVirtual())
	return srv, objstore.New(srv)
}

// TestRemoteCancelMidCommit is TestCancelMidCommitPublicAPI transposed
// onto the object backend with pipelining on: a cancel firing a few
// backend writes into a large commit is a crash cut — the abandoned
// multipart session must never become visible, recovery must come back
// clean, every recovered byte is new-data-or-hole, and a retry with a
// live context converges. Swept over both engines, sharded and
// unsharded, because the window dispatcher replaces the pool dispatch
// on exactly these paths.
func TestRemoteCancelMidCommit(t *testing.T) {
	keys, err := GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"coalesced", []Option{WithIOWindow(8)}},
		{"per-block", []Option{WithIOWindow(8), WithoutCoalescing()}},
		{"sharded-coalesced", []Option{WithIOWindow(8), WithShards(4)}},
		{"sharded-per-block", []Option{WithIOWindow(8), WithShards(4), WithoutCoalescing()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, inner := newObjStore()
			store := &cancelAfterStore{inner: inner}
			m, err := New(store, keys, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			oldData := bytes.Repeat([]byte{0xAB}, 256*1024)
			if err := m.WriteFile("big", oldData); err != nil {
				t.Fatal(err)
			}

			newData := bytes.Repeat([]byte{0xCD}, 256*1024)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			store.arm(3, cancel) // cancel mid-commit, a few writes in
			err = m.WriteFileCtx(ctx, "big", newData)
			if err == nil {
				t.Fatal("huge write succeeded despite mid-commit cancel")
			}
			if !errors.Is(err, ErrCanceled) || !IsCanceled(err) {
				t.Fatalf("error %v does not wrap ErrCanceled", err)
			}

			// The cut may strand multipart sessions — crash state on the
			// server, fine — but nothing staged may have reached the
			// committed namespace, which recovery must then clean up.
			store.arm(0, nil)
			m2, err := New(store, keys, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m2.Recover("big"); err != nil {
				t.Fatalf("recover: %v", err)
			}
			rep, err := m2.Check("big")
			if err != nil || !rep.Clean() {
				t.Fatalf("post-recovery audit: %+v, %v", rep, err)
			}
			got, err := m2.ReadFile("big")
			if err != nil {
				t.Fatalf("read after recovery: %v", err)
			}
			for i, b := range got {
				if b != 0xCD && b != 0x00 {
					t.Fatalf("byte %d after recovery holds %#x (neither new data nor hole)", i, b)
				}
			}

			// Retry with a live context converges to the new content and
			// leaves no stray upload sessions behind.
			if err := m2.WriteFileCtx(context.Background(), "big", newData); err != nil {
				t.Fatalf("retry write: %v", err)
			}
			got, err = m2.ReadFile("big")
			if err != nil || !bytes.Equal(got, newData) {
				t.Fatalf("content after retry: %v", err)
			}
			if open := srv.Stats().OpenUploads; open != 0 {
				t.Fatalf("%d multipart sessions still open after a committed write", open)
			}
		})
	}
}

// TestHedgedLoserNoState: hedged reads must be pure — after a read
// workload that demonstrably hedged (Delay=1ns forces a duplicate of
// essentially every read), the server shows zero mutations from the
// read phase and no stray upload sessions, and the readback is exact.
func TestHedgedLoserNoState(t *testing.T) {
	keys, err := GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	// Real clock, zero configured latency: requests complete in
	// microseconds, and the 1ns hedge delay fires before almost all of
	// them, racing a duplicate against every primary.
	srv := objstore.NewMemserver(objstore.ServerParams{}, nil)
	store := objstore.New(srv)
	data := bytes.Repeat([]byte{0x5A}, 512*1024)
	mw, err := New(store, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}

	m, err := New(store, keys,
		WithHedgedReads(HedgePolicy{Delay: time.Nanosecond}),
		WithIOWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	before := srv.Stats()
	for i := 0; i < 4; i++ {
		got, err := m.ReadFile("f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("hedged readback diverged from the written bytes")
		}
	}
	after := srv.Stats()

	var hedges int64
	for _, hs := range m.HedgedReadStats() {
		hedges += hs.Hedges
	}
	if hedges == 0 {
		t.Fatal("read workload never hedged; the invariant was not exercised")
	}
	if after.Puts != before.Puts || after.Parts != before.Parts ||
		after.Completes != before.Completes || after.Deletes != before.Deletes {
		t.Fatalf("hedged reads mutated server state: before %+v, after %+v", before, after)
	}
	if after.OpenUploads != 0 {
		t.Fatalf("%d multipart sessions open after a read-only workload", after.OpenUploads)
	}
}
