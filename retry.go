package lamassu

// Retry policy — the public face of the backend fault-tolerance layer.
//
// WithRetry(policy) interposes a retrying wrapper between the engine
// and the backing store: backend operations that fail with a
// RETRYABLE error (see IsRetryable) are re-issued with capped
// exponential backoff and deterministic jitter, invisibly to the
// commit protocol. Because every backend operation Lamassu issues is
// idempotent — a retried write rewrites the identical bytes at the
// identical offset — a retry is indistinguishable from the §2.4
// crash-cut-then-resume path, so enabling retries never weakens the
// crash-consistency model. Fatal errors (missing files, integrity
// failures, cancellation) surface immediately; in particular a
// context cancellation is never retried away — it cuts the loop, the
// operation reports IsCanceled, and the standard crash-cut recovery
// applies.

import (
	"time"

	"lamassu/internal/backend"
	"lamassu/internal/metrics"
)

// RetryPolicy tunes the retrying store wrapper enabled by WithRetry.
// The zero value selects the defaults noted on each field.
type RetryPolicy struct {
	// MaxAttempts is the total number of times a backend operation is
	// issued (first try included) before its last retryable error
	// surfaces to the caller. 0 selects 4; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first re-issue (0 selects
	// 1ms). Successive re-issues double it.
	BaseDelay time.Duration
	// MaxDelay caps the per-attempt backoff (0 selects 64× BaseDelay).
	MaxDelay time.Duration
	// Seed perturbs the deterministic backoff jitter; runs with the
	// same seed observe identical schedules.
	Seed uint64
}

// backendPolicy lowers the public policy onto the backend layer,
// wiring the retry counters into the mount's recorder (nil-safe: the
// callbacks are no-ops without Options.CollectLatency).
func (p RetryPolicy) backendPolicy(rec *metrics.Recorder) backend.RetryPolicy {
	return backend.RetryPolicy{
		MaxAttempts: p.MaxAttempts,
		BaseDelay:   p.BaseDelay,
		MaxDelay:    p.MaxDelay,
		Seed:        p.Seed,
		OnRetry: func(op string, attempt int, err error) {
			rec.CountEvent(metrics.RetryAttempt, 1)
		},
		OnExhausted: func(op string, attempts int, err error) {
			rec.CountEvent(metrics.RetryExhausted, 1)
		},
	}
}
