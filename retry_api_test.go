package lamassu

// API-level tests of the WithRetry fault-tolerance layer: a flaky
// store behind a retry-enabled mount is invisible to the caller, the
// taxonomy surfaces through lamassu.IsRetryable, cancellation is
// never retried away, and a cut retry loop recovers through the
// standard crash-cut path.

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"lamassu/internal/backend"
	"lamassu/internal/faultfs"
)

func testKeysT(t *testing.T) KeyPair {
	t.Helper()
	keys, err := GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestWithRetryAbsorbsTransientFaults(t *testing.T) {
	keys := testKeysT(t)
	fs := faultfs.New(backend.NewMemStore())
	m, err := New(fs, keys,
		WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Microsecond}),
		WithLatencyCollection(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	data := bytes.Repeat([]byte("retry me "), 4096)
	fs.ArmTransient(faultfs.OpWrite, 3)
	fs.ArmTransient(faultfs.OpRead, 2)
	fs.ArmTransient(faultfs.OpOpen, 2)

	f, err := m.Create("doc")
	if err != nil {
		t.Fatalf("Create through transient faults: %v", err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt through transient faults: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync through transient faults: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt through transient faults: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("readback mismatch through retry layer")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if fs.TransientInjected() == 0 {
		t.Fatal("no transient fault was injected; the test proved nothing")
	}
	st := m.EngineStats()
	if st.RetryAttempts == 0 {
		t.Fatalf("EngineStats.RetryAttempts = 0 after %d injected faults", fs.TransientInjected())
	}
	if st.RetriesExhausted != 0 {
		t.Fatalf("EngineStats.RetriesExhausted = %d, want 0", st.RetriesExhausted)
	}
}

func TestWithoutRetryTransientFaultSurfaces(t *testing.T) {
	keys := testKeysT(t)
	fs := faultfs.New(backend.NewMemStore())
	m, err := New(fs, keys) // no WithRetry
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	f, err := m.Create("doc")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	fs.ArmTransient(faultfs.OpWrite, 1)
	_, werr := f.WriteAt([]byte("payload2"), 0)
	err = werr
	if err == nil {
		err = f.Sync()
	}
	if err == nil {
		t.Fatal("transient fault vanished without a retry layer")
	}
	if !errors.Is(err, faultfs.ErrTransient) {
		t.Fatalf("surfaced error %v does not wrap the injected fault", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("IsRetryable = false for a transient backend fault: %v", err)
	}
	fs.DisarmTransient()
}

func TestRetryNeverMasksFatalErrors(t *testing.T) {
	keys := testKeysT(t)
	m, err := New(NewMemStorage(), keys, WithRetry(RetryPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := m.Open("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open(missing) through retry mount: %v, want ErrNotExist", err)
	} else if IsRetryable(err) {
		t.Fatal("ErrNotExist became retryable")
	}
	// Integrity failures are fatal, never retryable (the conformance
	// sweep's "integrity" row lives at this level: the integrity layer
	// wraps the FS, not the Store).
	if IsRetryable(ErrIntegrity) {
		t.Fatal("ErrIntegrity classifies retryable")
	}
	if IsRetryable(ErrCanceled) {
		t.Fatal("ErrCanceled classifies retryable")
	}
	if !IsRetryable(ErrRetryable) {
		t.Fatal("the ErrRetryable mark itself must classify retryable")
	}
}

// TestCanceledRetryLoopRecoversViaCrashCut pins the acceptance
// criterion: a cancellation landing while the retry loop is backing
// off surfaces IsCanceled (not retried away, not misclassified), and
// the interrupted commit is repaired by the standard crash-cut
// recovery, converging once the fault schedule clears.
func TestCanceledRetryLoopRecoversViaCrashCut(t *testing.T) {
	keys := testKeysT(t)
	fs := faultfs.New(backend.NewMemStore())
	m, err := New(fs, keys, WithRetry(RetryPolicy{
		MaxAttempts: 1 << 20, // effectively unbounded: only ctx can stop the loop
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A committed baseline the recovery must preserve.
	f, err := m.Create("doc")
	if err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte{0xAB}, 8192)
	if _, err := f.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	// Every write now fails transiently; the retry loop spins in
	// backoff until the deadline cuts it.
	fs.ArmTransient(faultfs.OpWrite, 1<<30)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	update := bytes.Repeat([]byte{0xCD}, 4096)
	_, werr := f.WriteAtCtx(ctx, update, 0)
	serr := f.SyncCtx(ctx)
	err = werr
	if err == nil {
		err = serr
	}
	if err == nil {
		t.Fatal("write+sync succeeded while every backend write fails")
	}
	if !IsCanceled(err) {
		t.Fatalf("cut retry loop: %v, want IsCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cut retry loop: %v, want context.DeadlineExceeded in chain", err)
	}

	// Outage over: the canceled commit is a crash cut; recovery (run
	// explicitly here) repairs it and the retried operation converges.
	fs.DisarmTransient()
	if _, err := m.Recover("doc"); err != nil {
		t.Fatalf("Recover after canceled retry loop: %v", err)
	}
	if _, err := f.WriteAt(update, 0); err != nil {
		t.Fatalf("re-issued write after recovery: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
	want := append(append([]byte{}, update...), base[4096:]...)
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content did not converge after crash-cut recovery")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWithRetryShardedMount: the retry wrapper sits on each LEAF of a
// sharded deployment (beneath the shard router), so sharded mounts
// absorb transient faults identically and the carve-mode identity
// invariants hold.
func TestWithRetryShardedMount(t *testing.T) {
	keys := testKeysT(t)
	fs := faultfs.New(backend.NewMemStore())
	m, err := New(fs, keys,
		WithShards(4),
		WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Microsecond}),
		WithLatencyCollection(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	fs.ArmTransient(faultfs.OpWrite, 4)
	fs.ArmTransient(faultfs.OpRead, 2)
	data := bytes.Repeat([]byte("sharded retry "), 2048)
	f, err := m.Create("doc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("sharded write through faults: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sharded sync through faults: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("sharded read through faults: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sharded readback mismatch")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if m.EngineStats().RetryAttempts == 0 {
		t.Fatal("sharded mount recorded no retry attempts")
	}
}
