package lamassu

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"lamassu/internal/backend"
	"lamassu/internal/layout"
)

// Options.Shards carves logical shards out of one physical store; the
// backing layout must be identical to the unsharded mount at every
// shard count, so enabling it on an existing deployment is safe. Data
// blocks are convergently encrypted and must match byte for byte;
// metadata blocks are GCM-sealed under random nonces (different on
// every run, sharded or not), so for them equivalence is equal
// placement and equal decoded content — which the read-back via a
// fresh unsharded mount checks.
func TestShardsCarveByteIdentical(t *testing.T) {
	keys := mustKeys(t)
	write := func(m *Mount) {
		t.Helper()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 4; i++ {
			data := make([]byte, 200000*i+999)
			rng.Read(data)
			if err := m.WriteFile(fmt.Sprintf("f%d", i), data); err != nil {
				t.Fatal(err)
			}
		}
	}
	backing := func(shards int) *backend.MemStore {
		t.Helper()
		mem := backend.NewMemStore()
		m, err := NewMount(mem, keys, &Options{Shards: shards, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		write(m)
		return mem
	}
	plain := backend.NewMemStore()
	m, err := NewMount(plain, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	write(m)

	want, err := plain.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 8} {
		mem := backing(shards)
		names, err := mem.List()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(names) != fmt.Sprint(want) {
			t.Fatalf("Shards=%d: namespace %v, want %v", shards, names, want)
		}
		geo := layout.Default()
		for _, n := range names {
			a, _ := backend.ReadFile(plain, n)
			b, _ := backend.ReadFile(mem, n)
			if len(a) != len(b) {
				t.Fatalf("Shards=%d: %s physical size %d, want %d", shards, n, len(b), len(a))
			}
			bs := geo.BlockSize
			for blk := 0; blk*bs < len(a); blk++ {
				if int64(blk)%int64(geo.SegmentBlocks()) == 0 {
					continue // metadata block: random GCM nonce
				}
				lo, hi := blk*bs, (blk+1)*bs
				if hi > len(a) {
					hi = len(a)
				}
				if !bytes.Equal(a[lo:hi], b[lo:hi]) {
					t.Fatalf("Shards=%d: %s data block %d differs from unsharded mount", shards, n, blk)
				}
			}
		}
		// The sharded bytes decrypt through a fresh UNSHARDED mount:
		// the carve changed nothing the engine can observe.
		um, err := NewMount(mem, keys, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 4; i++ {
			wantData := make([]byte, 200000*i+999)
			rng.Read(wantData)
			got, err := um.ReadFile(fmt.Sprintf("f%d", i))
			if err != nil || !bytes.Equal(got, wantData) {
				t.Fatalf("Shards=%d: f%d unreadable through unsharded mount: %v", shards, i, err)
			}
		}
	}
}

// A mount over NewShardedStorage spreads data and reports per-shard
// stats; round trips and audits stay clean.
func TestShardedStorageMount(t *testing.T) {
	keys := mustKeys(t)
	stores := make([]Storage, 4)
	mems := make([]*backend.MemStore, 4)
	for i := range stores {
		mems[i] = backend.NewMemStore()
		stores[i] = mems[i]
	}
	stripe, err := SegmentStripeBytes(nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if stripe%4096 != 0 {
		t.Fatalf("SegmentStripeBytes = %d, not block-aligned", stripe)
	}
	storage, err := NewShardedStorage(stores, &ShardOptions{StripeBytes: stripe})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMount(storage, keys, &Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	contents := map[string][]byte{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("vm-%d.img", i)
		data := make([]byte, int(stripe)*i/2+5000)
		rng.Read(data)
		contents[name] = data
		if err := m.WriteFile(name, data); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range contents {
		got, err := m.ReadFile(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s: round trip failed: %v", name, err)
		}
		rep, err := m.Check(name)
		if err != nil || !rep.Clean() {
			t.Fatalf("%s: audit: %+v, %v", name, rep, err)
		}
	}

	stats := m.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats = %d entries, want 4", len(stats))
	}
	var wrote, budget int
	for _, s := range stats {
		if s.BytesWritten > 0 {
			wrote++
		}
		budget += s.Budget
		if s.QueueDepth != 0 {
			t.Fatalf("shard %d queue depth %d at idle", s.Shard, s.QueueDepth)
		}
	}
	if wrote < 2 {
		t.Fatalf("writes reached only %d shards", wrote)
	}
	if budget != 4 {
		t.Fatalf("budgets sum to %d, want Parallelism=4", budget)
	}

	// An unsharded mount reports no shard stats.
	plain, err := NewMount(NewMemStorage(), keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := plain.ShardStats(); s != nil {
		t.Fatalf("unsharded mount ShardStats = %v, want nil", s)
	}
}

// EncryptNames must compose with a sharded store: name encryption is
// pushed inside each shard so the engine still sees the sharding seam
// (budgets, ShardStats) while the backing file names are encrypted.
func TestEncryptNamesOverShardedStorage(t *testing.T) {
	keys := mustKeys(t)
	mems := []*backend.MemStore{backend.NewMemStore(), backend.NewMemStore(), backend.NewMemStore()}
	storage, err := NewShardedStorage([]Storage{mems[0], mems[1], mems[2]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMount(storage, keys, &Options{EncryptNames: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("secret"), 5000)
	if err := m.WriteFile("visible-name", data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("visible-name")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	names, err := m.List()
	if err != nil || len(names) != 1 || names[0] != "visible-name" {
		t.Fatalf("List = %v, %v", names, err)
	}
	// The budgets engaged: ShardStats is non-nil with the carved pool.
	stats := m.ShardStats()
	if len(stats) != 3 {
		t.Fatalf("ShardStats = %d entries, want 3 (sharding lost behind namecrypt?)", len(stats))
	}
	budget := 0
	for _, s := range stats {
		budget += s.Budget
	}
	if budget != 4 {
		t.Fatalf("budgets sum to %d, want 4", budget)
	}
	// And the backing names really are encrypted on every shard.
	for i, mem := range mems {
		raw, err := mem.List()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range raw {
			if n == "visible-name" {
				t.Fatalf("shard %d stores the plaintext name", i)
			}
		}
	}
}

// Rebalancing a deployment written with EncryptNames: the zone keys
// give RebalanceShards the same plaintext-name placement view the
// mount used, so every file survives the migration.
func TestRebalanceShardsEncryptedNames(t *testing.T) {
	keys := mustKeys(t)
	stores := []Storage{NewMemStorage(), NewMemStorage(), NewMemStorage()}
	old, err := NewShardedStorage(stores, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMount(old, keys, &Options{EncryptNames: true})
	if err != nil {
		t.Fatal(err)
	}
	contents := map[string][]byte{}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("secret-doc-%d", i)
		data := make([]byte, 7000+i*450)
		rng.Read(data)
		contents[name] = data
		if err := m.WriteFile(name, data); err != nil {
			t.Fatal(err)
		}
	}

	grown, err := NewShardedStorage(append(stores, NewMemStorage()), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RebalanceShards(old, grown, keys)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != len(contents) {
		t.Fatalf("rebalance examined %d files, want %d", st.Files, len(contents))
	}

	m2, err := NewMount(grown, keys, &Options{EncryptNames: true})
	if err != nil {
		t.Fatal(err)
	}
	names, err := m2.List()
	if err != nil || len(names) != len(contents) {
		t.Fatalf("List after rebalance = %d files (%v), want %d", len(names), err, len(contents))
	}
	for name, want := range contents {
		got, err := m2.ReadFile(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s: read after rebalance: %v", name, err)
		}
	}
	if _, err := RebalanceShards(old, grown, keys, keys); err == nil {
		t.Fatal("two key pairs accepted")
	}
}

// Growing a sharded deployment through the public API: rebalance
// offline, then mount the grown view and read everything back.
func TestRebalanceShardsPublicAPI(t *testing.T) {
	keys := mustKeys(t)
	stores := []Storage{NewMemStorage(), NewMemStorage()}
	old, err := NewShardedStorage(stores, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMount(old, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	contents := map[string][]byte{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("doc-%d", i)
		data := make([]byte, 9000+i*777)
		rng.Read(data)
		contents[name] = data
		if err := m.WriteFile(name, data); err != nil {
			t.Fatal(err)
		}
	}

	grown, err := NewShardedStorage(append(stores, NewMemStorage()), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RebalanceShards(old, grown)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != len(contents) {
		t.Fatalf("rebalance examined %d files, want %d", st.Files, len(contents))
	}

	m2, err := NewMount(grown, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range contents {
		got, err := m2.ReadFile(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s: read after rebalance: %v", name, err)
		}
	}

	if _, err := RebalanceShards(NewMemStorage(), grown); err == nil {
		t.Fatal("RebalanceShards accepted a non-sharded store")
	}
}

func TestShardOptionErrors(t *testing.T) {
	keys := mustKeys(t)
	if _, err := NewMount(NewMemStorage(), keys, &Options{Shards: -1}); err == nil {
		t.Fatal("Shards: -1 accepted")
	}
	// A stripe that is not a multiple of the block size would let a
	// block write straddle two shards, breaking the §2.4 whole-block
	// atomicity assumption; the mount must refuse it.
	misaligned, err := NewShardedStorage(
		[]Storage{NewMemStorage(), NewMemStorage()},
		&ShardOptions{StripeBytes: 3000},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMount(misaligned, keys, nil); err == nil {
		t.Fatal("block-straddling stripe accepted")
	}
	sharded, err := NewShardedStorage([]Storage{NewMemStorage()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMount(sharded, keys, &Options{Shards: 2}); err == nil {
		t.Fatal("double sharding accepted")
	}
	if _, err := NewShardedStorage(nil, nil); err == nil {
		t.Fatal("empty store list accepted")
	}
}
